// Package sqlview parses a practical subset of SQL view definitions into
// algebra plans — the front end a user of idIVM writes views in:
//
//	SELECT did, pid, price
//	FROM parts NATURAL JOIN devices_parts NATURAL JOIN devices
//	WHERE category = 'phone'
//
//	SELECT did, SUM(price) AS cost
//	FROM parts, devices_parts, devices
//	WHERE parts.pid = devices_parts.pid AND devices_parts.did = devices.did
//	GROUP BY did
//
// Supported: SELECT with expressions, aliases and the aggregates
// SUM/COUNT/AVG/MIN/MAX; FROM with comma joins, NATURAL JOIN, and
// [INNER] JOIN … ON; WHERE with comparisons, AND/OR/NOT, IS [NOT] NULL;
// GROUP BY. Equality conjuncts of WHERE are attached to the join tree so
// the IVM rule engine sees real join predicates.
package sqlview

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // punctuation and operators
	tokKeyword // recognized SQL keywords, upper-cased
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "JOIN": true,
	"NATURAL": true, "INNER": true, "ON": true, "IS": true, "NULL": true,
	"TRUE": true, "FALSE": true, "CREATE": true, "VIEW": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"HAVING": true, "DISTINCT": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			l.ident()
		case unicode.IsDigit(rune(c)):
			if err := l.number(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.quotedIdent(); err != nil {
				return nil, err
			}
		default:
			if err := l.symbol(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' || c == '.' || c == '*' {
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	up := strings.ToUpper(text)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
		return
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
}

func (l *lexer) quotedIdent() error {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != '"' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("sqlview: unterminated quoted identifier at %d", start)
	}
	text := l.src[start+1 : l.pos]
	l.pos++
	l.toks = append(l.toks, token{kind: tokIdent, text: text, pos: start})
	return nil
}

func (l *lexer) number() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlview: unterminated string literal at %d", start)
}

func (l *lexer) symbol() error {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.toks = append(l.toks, token{kind: tokSymbol, text: two, pos: l.pos})
		l.pos += 2
		return nil
	}
	c := l.src[l.pos]
	switch c {
	case ',', '(', ')', '=', '<', '>', '+', '-', '*', '/', ';':
		l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sqlview: unexpected character %q at %d", c, l.pos)
}
