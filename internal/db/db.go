// Package db provides the catalog and modification log of idIVM: a set of
// named stored tables (base tables, materialized views and caches) and a
// trigger-style modification logger, layered over a storage.Engine.
//
// Storage itself — rows, indexes, epoch pre-state snapshots — lives
// behind the engine boundary (internal/storage); the catalog only decides
// *when* epochs open (the first logged modification after the last
// maintenance freezes the pre-state the views were last consistent with,
// Section 3 of the paper) and maintenance consumes the log and closes the
// epochs. Base-table modifications are applied eagerly, as in a live
// DBMS.
package db

import (
	"fmt"
	"sync"

	"idivm/internal/rel"
	"idivm/internal/storage"
)

// ModKind classifies a logged modification.
type ModKind uint8

// The three modification kinds.
const (
	ModInsert ModKind = iota
	ModDelete
	ModUpdate
)

// String returns "+", "-" or "u".
func (k ModKind) String() string {
	switch k {
	case ModInsert:
		return "+"
	case ModDelete:
		return "-"
	default:
		return "u"
	}
}

// Modification is one logged base-table change with full pre/post images,
// as a trigger-based logger would capture (Section 5).
type Modification struct {
	Kind  ModKind
	Table string
	Pre   rel.Tuple // full pre-image (delete, update)
	Post  rel.Tuple // full post-image (insert, update)
}

// Database is the catalog: named stored tables plus the modification log,
// over a storage.Engine that allocates the tables themselves. Every table
// is held as a *storage.Handle charging the database-wide counter. It
// implements algebra.Env (with no relation bindings; the IVM executor
// layers bindings on top).
//
// Concurrency contract: base-table modifications (Insert/Delete/Update,
// which append to the log and open epochs) are single-writer operations
// issued between maintenance rounds — the serving layer's group-commit
// dispatcher is that writer when one is attached. During a maintenance
// round the catalog and log are read-only, so the parallel Δ-script
// executor may resolve tables and compact the log from many goroutines;
// per-row thread-safety lives in the storage backend, and cost attribution
// is sharded via storage.Handle.WithCounter with MergeCounter folding the
// shards back here.
//
// The catalog maps themselves (tables/order/logging) are guarded by mu so
// that epoch-pinned snapshot readers may resolve handles and schemas
// concurrently with catalog mutations (view registration creates tables).
// The modification log and the counter stay single-writer: they are only
// touched by the modification/maintenance path.
type Database struct {
	engine  storage.Engine
	mu      sync.RWMutex // guards tables, order, logging, derivedOn
	tables  map[string]*storage.Handle
	order   []string
	counter rel.CostCounter
	log     []Modification
	logging map[string]bool // tables whose changes are logged (base tables of views)

	// derivedOn marks materialized views whose applied i-diffs are recorded
	// as per-view derived modification logs — the "log" a cascaded
	// (view-over-view) consumer compacts exactly like a trigger log on a
	// base table. The IVM system enables it for every view some other view
	// reads as a source. The log slices themselves live in derived, guarded
	// separately: parallel Δ-script executors append from pool goroutines
	// while the catalog maps stay read-only.
	derivedOn map[string]bool
	derivedMu sync.Mutex
	derived   map[string][]Modification
}

// New creates an empty database on the default in-memory engine.
func New() *Database {
	return NewWith(storage.NewMem())
}

// NewWith creates an empty database on the given storage engine.
func NewWith(e storage.Engine) *Database {
	return &Database{engine: e, tables: make(map[string]*storage.Handle), logging: make(map[string]bool),
		derivedOn: make(map[string]bool), derived: make(map[string][]Modification)}
}

// Engine returns the storage engine the catalog allocates tables from.
func (d *Database) Engine() storage.Engine { return d.engine }

// Counter returns the database-wide cost counter; all registered tables
// charge to it.
func (d *Database) Counter() *rel.CostCounter { return &d.counter }

// MergeCounter folds a sharded cost counter (accumulated by a parallel
// maintenance run through storage.Handle.WithCounter handles) into the
// database-wide counter, keeping its totals identical to a sequential run.
// Callers must have joined the goroutines that charged the shard.
func (d *Database) MergeCounter(c rel.CostCounter) { d.counter.Add(c) }

// CreateTable allocates a new stored table on the engine and registers it
// under the given bare-name schema.
func (d *Database) CreateTable(name string, schema rel.Schema) (*storage.Handle, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[name]; dup {
		return nil, fmt.Errorf("db: table %q already exists", name)
	}
	t, err := d.engine.Create(name, schema)
	if err != nil {
		return nil, err
	}
	h := storage.NewHandle(t)
	h.SetCounter(&d.counter)
	d.tables[name] = h
	d.order = append(d.order, name)
	return h, nil
}

// MustCreateTable is CreateTable that panics on error.
func (d *Database) MustCreateTable(name string, schema rel.Schema) *storage.Handle {
	t, err := d.CreateTable(name, schema)
	if err != nil {
		panic(err)
	}
	return t
}

// AddTable registers an existing backend table (e.g. one prepared outside
// the catalog by a test) under its own name, wrapping it in a handle that
// charges the database-wide counter. The table must not already be
// wrapped in a *storage.Handle — that would double-charge every access.
func (d *Database) AddTable(t storage.Table) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.tables[t.Name()]; dup {
		return fmt.Errorf("db: table %q already exists", t.Name())
	}
	h := storage.NewHandle(t)
	h.SetCounter(&d.counter)
	d.tables[t.Name()] = h
	d.order = append(d.order, t.Name())
	return nil
}

// DropTable removes a table from the catalog.
func (d *Database) DropTable(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tables[name]; !ok {
		return
	}
	delete(d.tables, name)
	for i, n := range d.order {
		if n == name {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// Table implements algebra.Env.
func (d *Database) Table(name string) (*storage.Handle, error) {
	d.mu.RLock()
	t, ok := d.tables[name]
	d.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("db: unknown table %q", name)
	}
	return t, nil
}

// Rel implements algebra.Env; a bare database has no relation bindings.
func (d *Database) Rel(name string) (*rel.Relation, error) {
	return nil, fmt.Errorf("db: no relation binding for %q", name)
}

// TableNames returns the registered table names in creation order.
func (d *Database) TableNames() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return append([]string(nil), d.order...)
}

// EnableLogging marks a table's modifications for logging. The IVM system
// enables it for every base table of a registered view.
func (d *Database) EnableLogging(table string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.logging[table] = true
}

// LoggingEnabled reports whether modifications to the table are logged.
func (d *Database) LoggingEnabled(table string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.logging[table]
}

// EnableDerivedLogging marks a materialized view as a cascade source: the
// Δ-script executor records every APPLY against it as full-image
// Modifications (via LogDerived), which downstream views consume as their
// modification-log input for the same round. The IVM system enables it
// when a view registers another view as a source.
func (d *Database) EnableDerivedLogging(view string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.derivedOn[view] = true
}

// DerivedLoggingEnabled reports whether a view's applied i-diffs are
// recorded into a derived modification log.
func (d *Database) DerivedLoggingEnabled(view string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.derivedOn[view]
}

// LogDerived appends a batch of modifications to a view's derived log.
// Batches arrive in apply-step order (applies to one table are chained by
// the step scheduler), so per-key entry order is deterministic whatever
// the worker schedule; the mutex only arbitrates appends for *different*
// views maintained concurrently.
func (d *Database) LogDerived(view string, mods []Modification) {
	if len(mods) == 0 {
		return
	}
	d.derivedMu.Lock()
	d.derived[view] = append(d.derived[view], mods...)
	d.derivedMu.Unlock()
}

// DerivedLog returns the modifications recorded against a view since the
// last ClearLog/ResetLog — the same-round delta feed of a cascade parent.
func (d *Database) DerivedLog(view string) []Modification {
	d.derivedMu.Lock()
	defer d.derivedMu.Unlock()
	return d.derived[view]
}

// ClearDerivedLogs drops every view's derived modification log without
// touching the base log or any epochs. The IVM system calls it when a
// maintenance round fails: the base log is kept for retry, but derived
// logs are intra-round state — regenerated when the retried round
// re-runs the parent views — so keeping them would feed children
// duplicated entries.
func (d *Database) ClearDerivedLogs() { d.clearDerived() }

func (d *Database) clearDerived() {
	d.derivedMu.Lock()
	for k := range d.derived {
		delete(d.derived, k)
	}
	d.derivedMu.Unlock()
}

func (d *Database) beginEpochIfLogged(t *storage.Handle) {
	if d.LoggingEnabled(t.Name()) && !t.InEpoch() {
		t.BeginEpoch()
	}
}

// Insert applies and logs an insertion into a base table.
func (d *Database) Insert(table string, row rel.Tuple) error {
	t, err := d.Table(table)
	if err != nil {
		return err
	}
	d.beginEpochIfLogged(t)
	if err := t.Insert(row); err != nil {
		return err
	}
	if d.LoggingEnabled(table) {
		d.log = append(d.log, Modification{Kind: ModInsert, Table: table, Post: row.Clone()})
	}
	return nil
}

// Delete applies and logs a deletion by primary key; it reports whether a
// row was removed.
func (d *Database) Delete(table string, key []rel.Value) (bool, error) {
	t, err := d.Table(table)
	if err != nil {
		return false, err
	}
	d.beginEpochIfLogged(t)
	pre, ok := t.Get(rel.StatePost, key)
	if !ok {
		return false, nil
	}
	preCopy := pre.Clone()
	if !t.DeleteKey(key) {
		return false, nil
	}
	if d.LoggingEnabled(table) {
		d.log = append(d.log, Modification{Kind: ModDelete, Table: table, Pre: preCopy})
	}
	return true, nil
}

// Update applies and logs an update by primary key; it reports whether a
// row was updated.
func (d *Database) Update(table string, key []rel.Value, setAttrs []string, setVals []rel.Value) (bool, error) {
	t, err := d.Table(table)
	if err != nil {
		return false, err
	}
	d.beginEpochIfLogged(t)
	pre, ok := t.Get(rel.StatePost, key)
	if !ok {
		return false, nil
	}
	preCopy := pre.Clone()
	changed, err := t.UpdateKey(key, setAttrs, setVals)
	if err != nil || !changed {
		return changed, err
	}
	post, _ := t.Get(rel.StatePost, key)
	if d.LoggingEnabled(table) {
		d.log = append(d.log, Modification{Kind: ModUpdate, Table: table, Pre: preCopy, Post: post.Clone()})
	}
	return true, nil
}

// Log returns the modifications logged since the last ResetLog.
func (d *Database) Log() []Modification { return d.log }

// ClearLog clears the modification log (and every derived log) without
// touching any epochs — the pinned-epoch maintenance path
// (ivm.System.PinEpochs) keeps every served table in a permanent epoch
// and advances the snapshots itself.
func (d *Database) ClearLog() {
	d.log = nil
	d.clearDerived()
}

// ResetLog clears the modification log (and every derived log) and closes
// the epochs of all logged base tables and derived-logged views: the
// views are now consistent with the post-state.
func (d *Database) ResetLog() {
	d.log = nil
	d.clearDerived()
	d.mu.RLock()
	var logged []*storage.Handle
	for _, name := range d.order {
		if d.logging[name] || d.derivedOn[name] {
			logged = append(logged, d.tables[name])
		}
	}
	d.mu.RUnlock()
	for _, t := range logged {
		t.EndEpoch()
	}
}
