package db

import (
	"testing"

	"idivm/internal/rel"
)

func TestAddTableAndCounterSharing(t *testing.T) {
	d := New()
	ext := rel.MustNewTable("ext", rel.NewSchema([]string{"k"}, []string{"k"}))
	if err := d.AddTable(ext); err != nil {
		t.Fatal(err)
	}
	if err := d.AddTable(ext); err == nil {
		t.Fatal("duplicate AddTable must fail")
	}
	ext.MustInsert(rel.Int(1))
	d.Counter().Reset()
	// The backend table itself charges nothing; accesses through the
	// catalog's handle charge the database counter.
	h, err := d.Table("ext")
	if err != nil {
		t.Fatal(err)
	}
	h.Scan(rel.StatePost)
	if d.Counter().TupleReads != 1 {
		t.Fatal("added table must charge the database counter")
	}
}

func TestUpdateMissingRow(t *testing.T) {
	d := New()
	d.MustCreateTable("t", rel.NewSchema([]string{"k", "v"}, []string{"k"}))
	d.EnableLogging("t")
	ok, err := d.Update("t", []rel.Value{rel.Int(1)}, []string{"v"}, []rel.Value{rel.Int(2)})
	if err != nil || ok {
		t.Fatalf("update missing: ok=%v err=%v", ok, err)
	}
	if len(d.Log()) != 0 {
		t.Fatal("missing update must not log")
	}
}

func TestModKindStrings(t *testing.T) {
	if ModInsert.String() != "+" || ModDelete.String() != "-" || ModUpdate.String() != "u" {
		t.Fatal("mod kind strings")
	}
}

func TestRelBindingRefused(t *testing.T) {
	d := New()
	if _, err := d.Rel("anything"); err == nil {
		t.Fatal("bare database must refuse relation bindings")
	}
}

func TestMustCreateTablePanics(t *testing.T) {
	d := New()
	d.MustCreateTable("t", rel.NewSchema([]string{"k"}, []string{"k"}))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate MustCreateTable")
		}
	}()
	d.MustCreateTable("t", rel.NewSchema([]string{"k"}, []string{"k"}))
}

func TestLoggingOnlyAppliesToEnabledTables(t *testing.T) {
	d := New()
	d.MustCreateTable("a", rel.NewSchema([]string{"k"}, []string{"k"}))
	d.MustCreateTable("b", rel.NewSchema([]string{"k"}, []string{"k"}))
	d.EnableLogging("a")
	if !d.LoggingEnabled("a") || d.LoggingEnabled("b") {
		t.Fatal("LoggingEnabled misreports")
	}
	if err := d.Insert("a", rel.Tuple{rel.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("b", rel.Tuple{rel.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if len(d.Log()) != 1 {
		t.Fatalf("log = %d entries, want 1", len(d.Log()))
	}
	ta, _ := d.Table("a")
	tb, _ := d.Table("b")
	if !ta.InEpoch() || tb.InEpoch() {
		t.Fatal("epoch state wrong")
	}
	d.ResetLog()
}

func TestInsertUnknownTable(t *testing.T) {
	d := New()
	if err := d.Insert("ghost", rel.Tuple{rel.Int(1)}); err == nil {
		t.Fatal("insert into unknown table must fail")
	}
	if _, err := d.Delete("ghost", []rel.Value{rel.Int(1)}); err == nil {
		t.Fatal("delete from unknown table must fail")
	}
	if _, err := d.Update("ghost", []rel.Value{rel.Int(1)}, nil, nil); err == nil {
		t.Fatal("update of unknown table must fail")
	}
}
