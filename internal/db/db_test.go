package db

import (
	"testing"

	"idivm/internal/rel"
)

func newDB(t *testing.T) *Database {
	t.Helper()
	d := New()
	d.MustCreateTable("parts", rel.NewSchema([]string{"pid", "price"}, []string{"pid"}))
	d.EnableLogging("parts")
	if err := d.Insert("parts", rel.Tuple{rel.String("P1"), rel.Int(10)}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("parts", rel.Tuple{rel.String("P2"), rel.Int(20)}); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCreateTableDuplicate(t *testing.T) {
	d := newDB(t)
	if _, err := d.CreateTable("parts", rel.NewSchema([]string{"x"}, []string{"x"})); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if _, err := d.Table("nope"); err == nil {
		t.Fatal("unknown table must fail")
	}
}

func TestLoggingCapturesImages(t *testing.T) {
	d := newDB(t)
	d.ResetLog() // start a fresh maintenance window after the loads

	if _, err := d.Update("parts", []rel.Value{rel.String("P1")}, []string{"price"}, []rel.Value{rel.Int(11)}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Delete("parts", []rel.Value{rel.String("P2")}); err != nil {
		t.Fatal(err)
	}
	if err := d.Insert("parts", rel.Tuple{rel.String("P3"), rel.Int(30)}); err != nil {
		t.Fatal(err)
	}

	log := d.Log()
	if len(log) != 3 {
		t.Fatalf("log length = %d", len(log))
	}
	if log[0].Kind != ModUpdate || !log[0].Pre[1].Equal(rel.Int(10)) || !log[0].Post[1].Equal(rel.Int(11)) {
		t.Errorf("update log entry = %+v", log[0])
	}
	if log[1].Kind != ModDelete || !log[1].Pre[0].Equal(rel.String("P2")) {
		t.Errorf("delete log entry = %+v", log[1])
	}
	if log[2].Kind != ModInsert || !log[2].Post[0].Equal(rel.String("P3")) {
		t.Errorf("insert log entry = %+v", log[2])
	}
}

func TestEpochOpensOnFirstModification(t *testing.T) {
	d := newDB(t)
	d.ResetLog()
	parts, _ := d.Table("parts")
	if parts.InEpoch() {
		t.Fatal("no epoch expected before modifications")
	}
	if _, err := d.Update("parts", []rel.Value{rel.String("P1")}, []string{"price"}, []rel.Value{rel.Int(99)}); err != nil {
		t.Fatal(err)
	}
	if !parts.InEpoch() {
		t.Fatal("epoch must open on first logged modification")
	}
	pre, ok := parts.Get(rel.StatePre, []rel.Value{rel.String("P1")})
	if !ok || !pre[1].Equal(rel.Int(10)) {
		t.Fatalf("pre state = %v", pre)
	}
	d.ResetLog()
	if parts.InEpoch() {
		t.Fatal("ResetLog must close epochs")
	}
	if len(d.Log()) != 0 {
		t.Fatal("ResetLog must clear the log")
	}
}

func TestUnloggedTableBypassesLog(t *testing.T) {
	d := New()
	d.MustCreateTable("scratch", rel.NewSchema([]string{"k"}, []string{"k"}))
	if err := d.Insert("scratch", rel.Tuple{rel.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if len(d.Log()) != 0 {
		t.Fatal("unlogged table must not log")
	}
	s, _ := d.Table("scratch")
	if s.InEpoch() {
		t.Fatal("unlogged table must not open an epoch")
	}
}

func TestDeleteMissingRow(t *testing.T) {
	d := newDB(t)
	d.ResetLog()
	ok, err := d.Delete("parts", []rel.Value{rel.String("P9")})
	if err != nil || ok {
		t.Fatalf("delete missing: ok=%v err=%v", ok, err)
	}
	if len(d.Log()) != 0 {
		t.Fatal("missing delete must not log")
	}
}

func TestDropTable(t *testing.T) {
	d := newDB(t)
	d.DropTable("parts")
	if _, err := d.Table("parts"); err == nil {
		t.Fatal("dropped table must be gone")
	}
	if len(d.TableNames()) != 0 {
		t.Fatalf("TableNames = %v", d.TableNames())
	}
	d.DropTable("parts") // idempotent
}
