package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: idivm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSPJNonConditionalUpdate/id         	       1	   3917927 ns/op	       611.0 accesses/op
BenchmarkSPJNonConditionalUpdate/tuple-8    	       2	  21510212 ns/op	      7051 accesses/op
BenchmarkFig12a_DiffSize/d=200/A=idIVM-8    	       1	   5000000 ns/op	      1200 accesses/op
BenchmarkTable2_SPJModel                    	       1	   9000000 ns/op	        11.54 speedup	        11.00 predicted
PASS
ok  	idivm	0.474s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(got), got)
	}
	b := got[1]
	if b.Name != "BenchmarkSPJNonConditionalUpdate/tuple" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", b.Name)
	}
	if b.Iterations != 2 || b.Metrics["accesses/op"] != 7051 || b.Metrics["ns/op"] != 21510212 {
		t.Errorf("bad parse: %+v", b)
	}
	if m := got[3].Metrics; m["speedup"] != 11.54 || m["predicted"] != 11 {
		t.Errorf("custom metrics not parsed: %+v", got[3])
	}
}

func TestParseBenchLastResultWins(t *testing.T) {
	in := "BenchmarkX/a 1 10 ns/op 100 accesses/op\nBenchmarkX/a 1 12 ns/op 120 accesses/op\n"
	got, err := parseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Metrics["accesses/op"] != 120 {
		t.Fatalf("want single result with last value, got %+v", got)
	}
}

// TestParseInformationalFixture parses a captured BenchmarkServing run:
// the latency/throughput columns must land in Informational (never in
// Metrics, where the gate could see them), while the replay lane's
// accesses/op stays a gateable metric.
func TestParseInformationalFixture(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "serving_bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := parseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(got), got)
	}
	conc, replay := got[0], got[1]
	if conc.Name != "BenchmarkServing/concurrent" || replay.Name != "BenchmarkServing/replay" {
		t.Fatalf("unexpected names: %q, %q", conc.Name, replay.Name)
	}
	for _, unit := range []string{"p50-ns", "p99-ns", "rounds/sec"} {
		if _, ok := conc.Informational[unit]; !ok {
			t.Errorf("concurrent lane missing informational %q: %+v", unit, conc)
		}
		if _, ok := conc.Metrics[unit]; ok {
			t.Errorf("%q leaked into gateable metrics: %+v", unit, conc)
		}
	}
	if conc.Informational["p50-ns"] <= 0 || conc.Informational["p99-ns"] < conc.Informational["p50-ns"] {
		t.Errorf("implausible latency percentiles: %+v", conc.Informational)
	}
	if _, ok := conc.Metrics["ns/op"]; !ok {
		t.Errorf("ns/op must stay a plain metric: %+v", conc)
	}
	if replay.Metrics["accesses/op"] <= 0 {
		t.Errorf("replay lane lost its gateable accesses/op: %+v", replay)
	}
	if len(replay.Informational) != 0 {
		t.Errorf("replay lane has no informational columns, got %+v", replay.Informational)
	}

	// The report renders the latency columns as INFO lines.
	lines := infoLines(got)
	if len(lines) != 1 || !strings.Contains(lines[0], "INFO     BenchmarkServing/concurrent") ||
		!strings.Contains(lines[0], "p50-ns") || !strings.Contains(lines[0], "report-only") {
		t.Errorf("bad INFO rendering: %q", lines)
	}

	// The JSON document carries them under "informational".
	raw, err := json.Marshal(Output{Benchmarks: got})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"informational"`) || !strings.Contains(string(raw), `"p99-ns"`) {
		t.Errorf("JSON lacks informational section: %s", raw)
	}
}

// TestGateRefusesInformationalMetric pins the report-only contract at the
// CLI: asking the gate to compare a wall-clock column is an error, not a
// silently green run.
func TestGateRefusesInformationalMetric(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-metric", "p99-ns", filepath.Join("testdata", "serving_bench.txt")}, nil, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("run = %d, want 2; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "informational") {
		t.Errorf("unhelpful error: %s", stderr.String())
	}
}

func mk(name string, accesses float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, Metrics: map[string]float64{"accesses/op": accesses, "ns/op": 1}}
}

func TestCompare(t *testing.T) {
	baseline := []Benchmark{mk("A", 100), mk("B", 100), mk("C", 100), mk("D", 100)}
	current := []Benchmark{mk("A", 100), mk("B", 119), mk("C", 121), mk("E", 50)}
	lines, regressed := compare(baseline, current, "accesses/op", 0.20)
	if !regressed {
		t.Fatalf("C at +21%% must regress; lines:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"OK       A", "OK       B", "REGRESS  C", "MISSING  D", "NEW      E"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

// The ns/op column is informational: it appears on compared lines but a
// huge wall-clock swing alone must never trip the gate.
func TestCompareNsPerOpColumnNeverGates(t *testing.T) {
	slow := Benchmark{Name: "A", Iterations: 1, Metrics: map[string]float64{"accesses/op": 100, "ns/op": 500}}
	baseline := []Benchmark{mk("A", 100)} // ns/op 1
	lines, regressed := compare(baseline, []Benchmark{slow}, "accesses/op", 0.20)
	if regressed {
		t.Fatalf("ns/op 500x must not gate:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "[ns/op 500 vs 1, +49900.0%]") {
		t.Errorf("ns/op column missing or wrong:\n%s", joined)
	}

	// Lines without ns/op on both sides carry no column.
	noNs := Benchmark{Name: "A", Iterations: 1, Metrics: map[string]float64{"accesses/op": 100}}
	lines, _ = compare(baseline, []Benchmark{noNs}, "accesses/op", 0.20)
	if strings.Contains(strings.Join(lines, "\n"), "[ns/op") {
		t.Errorf("one-sided ns/op must render no column:\n%s", strings.Join(lines, "\n"))
	}
}

// TestParseAllocsFixture parses a captured tuple-vs-batch run: the
// B.ReportAllocs columns must parse as plain gateable metrics, and the
// fixture's headline — identical accesses/op, three-orders-of-magnitude
// fewer allocs/op in batch mode — must survive the round trip.
func TestParseAllocsFixture(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "batch_bench.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := parseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(got), got)
	}
	tuple, batch := got[0], got[1]
	if tuple.Name != "BenchmarkBatchFilter/tuple" || batch.Name != "BenchmarkBatchFilter/b1024" {
		t.Fatalf("unexpected names: %q, %q", tuple.Name, batch.Name)
	}
	for _, b := range got {
		for _, unit := range []string{"allocs/op", "B/op", "accesses/op", "ns/op"} {
			if _, ok := b.Metrics[unit]; !ok {
				t.Errorf("%s: %q missing from metrics: %+v", b.Name, unit, b)
			}
		}
		if len(b.Informational) != 0 {
			t.Errorf("%s: allocation columns must not be informational: %+v", b.Name, b.Informational)
		}
	}
	if tuple.Metrics["accesses/op"] != batch.Metrics["accesses/op"] {
		t.Errorf("fixture accesses/op differ between modes: %v vs %v",
			tuple.Metrics["accesses/op"], batch.Metrics["accesses/op"])
	}
	if ratio := tuple.Metrics["allocs/op"] / batch.Metrics["allocs/op"]; ratio < 3 {
		t.Errorf("fixture allocs/op ratio %.1f, want the batch win >= 3x", ratio)
	}
}

// The allocs/op column mirrors the ns/op one: report-only next to the
// default gate, but a first-class gate when selected with -metric.
func TestCompareAllocsColumn(t *testing.T) {
	mkAlloc := func(name string, accesses, allocs float64) Benchmark {
		return Benchmark{Name: name, Iterations: 1, Metrics: map[string]float64{
			"accesses/op": accesses, "ns/op": 1, "allocs/op": allocs}}
	}
	baseline := []Benchmark{mkAlloc("A", 100, 1000)}
	bloated := []Benchmark{mkAlloc("A", 100, 9000)}

	// Default gate (accesses/op): a 9x allocation swing renders as a column
	// but must not gate.
	lines, regressed := compare(baseline, bloated, "accesses/op", 0.20)
	joined := strings.Join(lines, "\n")
	if regressed {
		t.Fatalf("allocs/op 9x must not gate under accesses/op:\n%s", joined)
	}
	if !strings.Contains(joined, "[allocs/op 9000 vs 1000, +800.0%]") {
		t.Errorf("allocs/op column missing or wrong:\n%s", joined)
	}

	// Opting in gates on it — and the line drops the redundant trailing
	// allocs column (the gated values already lead the line).
	lines, regressed = compare(baseline, bloated, "allocs/op", 0.20)
	joined = strings.Join(lines, "\n")
	if !regressed {
		t.Fatalf("-metric allocs/op must gate a 9x swing:\n%s", joined)
	}
	if !strings.Contains(joined, "REGRESS  A: allocs/op 9000.0 vs baseline 1000.0") {
		t.Errorf("bad allocs/op gate line:\n%s", joined)
	}
	if strings.Contains(joined, "[allocs/op") {
		t.Errorf("gated metric must not repeat as a trailing column:\n%s", joined)
	}

	// One-sided allocs/op renders no column.
	lines, _ = compare(baseline, []Benchmark{mk("A", 100)}, "accesses/op", 0.20)
	if strings.Contains(strings.Join(lines, "\n"), "[allocs/op") {
		t.Errorf("one-sided allocs/op must render no column:\n%s", strings.Join(lines, "\n"))
	}
}

func TestCompareNoRegression(t *testing.T) {
	baseline := []Benchmark{mk("A", 100)}
	current := []Benchmark{mk("A", 80)}
	lines, regressed := compare(baseline, current, "accesses/op", 0.20)
	if regressed {
		t.Fatalf("improvement flagged as regression:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "IMPROVE  A") {
		t.Errorf("improvement not reported:\n%s", strings.Join(lines, "\n"))
	}
}

// End-to-end through run(): parse sample output, write JSON, gate against
// a baseline that the sample regresses.
func TestRunGate(t *testing.T) {
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(benchTxt, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	outJSON := filepath.Join(dir, "BENCH_3.json")

	// No baseline: exit 0 and write the JSON document.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", outJSON, benchTxt}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	var doc Output
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, raw)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("JSON has %d benchmarks, want 4", len(doc.Benchmarks))
	}

	// Gate against a baseline with a much lower count: must exit 1.
	baseline := Output{Benchmarks: []Benchmark{mk("BenchmarkSPJNonConditionalUpdate/id", 400)}}
	baseRaw, _ := json.Marshal(baseline)
	basePath := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(basePath, baseRaw, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", basePath, benchTxt}, nil, &stdout, &stderr); code != 1 {
		t.Fatalf("run = %d, want 1 (regression)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	// Gate against an accurate baseline: exit 0.
	baseline = Output{Benchmarks: []Benchmark{mk("BenchmarkSPJNonConditionalUpdate/id", 611)}}
	baseRaw, _ = json.Marshal(baseline)
	if err := os.WriteFile(basePath, baseRaw, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", basePath, benchTxt}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("run = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}
