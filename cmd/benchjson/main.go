// Command benchjson converts `go test -bench` output into a stable JSON
// document and, given a baseline, gates on metric regressions.
//
// Usage:
//
//	go test -bench ... | benchjson -o BENCH_3.json
//	benchjson -o BENCH_3.json bench.txt
//	benchjson -baseline testdata/bench_baseline.json bench.txt
//
// Every benchmark line is parsed into its full metric set: ns/op, the
// B/op + allocs/op columns emitted by testing.B.ReportAllocs, and any
// testing.B.ReportMetric columns such as accesses/op. Latency and
// throughput columns (units ending in "-ns" or "/sec", like the serving
// benchmark's p50-ns, p99-ns and rounds/sec) are split into a separate
// informational set: they land in the JSON document's "informational"
// field, show up as INFO lines in the gate report, and can never be
// gated on — they are wall-clock, machine-dependent numbers. The
// regression gate compares one metric — by default accesses/op, which
// is a deterministic count in this repository, unlike ns/op — and exits
// non-zero when the current value exceeds baseline*(1+threshold). Each
// report line also shows the ns/op and allocs/op deltas as purely
// informational columns; wall-clock never gates, and allocs/op gates only
// when selected with -metric allocs/op. Benchmarks present only on one side
// are reported but do not fail the gate, so benchmarks can be added
// before the baseline is regenerated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result. Metrics holds the gateable
// columns; Informational holds wall-clock latency/throughput columns
// (see informationalUnit), which the gate never compares.
type Benchmark struct {
	Name          string             `json:"name"`
	Iterations    int64              `json:"iterations"`
	Metrics       map[string]float64 `json:"metrics"`
	Informational map[string]float64 `json:"informational,omitempty"`
}

// informationalUnit reports whether a metric column is report-only: the
// serving benchmark's latency percentiles ("p50-ns", "p99-ns") and
// throughput ("rounds/sec") are wall-clock measurements that vary across
// machines, so they must never participate in the regression gate.
func informationalUnit(unit string) bool {
	return strings.HasSuffix(unit, "-ns") || strings.HasSuffix(unit, "/sec")
}

// Output is the top-level JSON document.
type Output struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// gomaxprocsSuffix matches the "-8" style suffix go test appends to
// benchmark names when GOMAXPROCS > 1.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts benchmark result lines from go test output. Repeated
// names (e.g. from concatenated runs) keep the last result, in first
// encounter order.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var order []string
	byName := make(map[string]Benchmark)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iteration count, then value-unit pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		b := Benchmark{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			if unit := fields[i+1]; informationalUnit(unit) {
				if b.Informational == nil {
					b.Informational = make(map[string]float64)
				}
				b.Informational[unit] = v
			} else {
				b.Metrics[unit] = v
			}
		}
		if !ok {
			continue
		}
		if _, seen := byName[name]; !seen {
			order = append(order, name)
		}
		byName[name] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		out = append(out, byName[name])
	}
	return out, nil
}

// nsPerOpColumn renders the informational ns/op comparison appended to each
// gated line. Wall-clock is noisy and machine-dependent, so it never gates —
// the column exists so speedups from parallel kernels are visible in the
// same report that pins the deterministic access counts.
func nsPerOpColumn(base, cur Benchmark) string {
	want, okB := base.Metrics["ns/op"]
	got, okC := cur.Metrics["ns/op"]
	if !okB || !okC || want == 0 {
		return ""
	}
	return fmt.Sprintf("  [ns/op %.0f vs %.0f, %+.1f%%]", got, want, 100*(got/want-1))
}

// allocsPerOpColumn renders the informational allocs/op comparison shown
// next to the ns/op column. Allocation counts are the headline number the
// batch kernels move and, unlike wall-clock, are stable per configuration —
// but they shift with runtime versions, so they report by default and gate
// only when explicitly selected via -metric allocs/op.
func allocsPerOpColumn(base, cur Benchmark) string {
	want, okB := base.Metrics["allocs/op"]
	got, okC := cur.Metrics["allocs/op"]
	if !okB || !okC || want == 0 {
		return ""
	}
	return fmt.Sprintf("  [allocs/op %.0f vs %.0f, %+.1f%%]", got, want, 100*(got/want-1))
}

// infoColumns is the trailing report-only block on each gated line: the
// ns/op delta plus the allocs/op delta, the latter omitted when allocs/op
// itself is the gated metric (its values already lead the line).
func infoColumns(base, cur Benchmark, gated string) string {
	s := nsPerOpColumn(base, cur)
	if gated != "allocs/op" {
		s += allocsPerOpColumn(base, cur)
	}
	return s
}

// compare gates current against baseline on one metric. It returns
// human-readable report lines and whether any benchmark regressed past the
// threshold. Each line carries trailing informational ns/op and allocs/op
// columns that never influence the gate.
func compare(baseline, current []Benchmark, metric string, threshold float64) ([]string, bool) {
	cur := make(map[string]Benchmark, len(current))
	for _, b := range current {
		cur[b.Name] = b
	}
	var lines []string
	regressed := false
	for _, base := range baseline {
		want, ok := base.Metrics[metric]
		if !ok {
			continue
		}
		c, ok := cur[base.Name]
		if !ok {
			lines = append(lines, fmt.Sprintf("MISSING  %s: in baseline but not in current run", base.Name))
			continue
		}
		got, ok := c.Metrics[metric]
		if !ok {
			lines = append(lines, fmt.Sprintf("MISSING  %s: current run lacks metric %q", base.Name, metric))
			continue
		}
		ns := infoColumns(base, c, metric)
		switch {
		case want == 0:
			if got != 0 {
				regressed = true
				lines = append(lines, fmt.Sprintf("REGRESS  %s: %s %.1f, baseline 0%s", base.Name, metric, got, ns))
			}
		case got > want*(1+threshold):
			regressed = true
			lines = append(lines, fmt.Sprintf("REGRESS  %s: %s %.1f vs baseline %.1f (+%.1f%%, limit +%.0f%%)%s",
				base.Name, metric, got, want, 100*(got/want-1), 100*threshold, ns))
		case got < want:
			lines = append(lines, fmt.Sprintf("IMPROVE  %s: %s %.1f vs baseline %.1f (%.1f%%)%s",
				base.Name, metric, got, want, 100*(got/want-1), ns))
		default:
			lines = append(lines, fmt.Sprintf("OK       %s: %s %.1f vs baseline %.1f%s", base.Name, metric, got, want, ns))
		}
	}
	for _, b := range current {
		if _, ok := b.Metrics[metric]; !ok {
			continue
		}
		found := false
		for _, base := range baseline {
			if base.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			lines = append(lines, fmt.Sprintf("NEW      %s: not in baseline (regenerate it to start gating)", b.Name))
		}
	}
	lines = append(lines, infoLines(current)...)
	return lines, regressed
}

// infoLines renders one report line per benchmark carrying informational
// (report-only) metrics, columns in sorted order for stable output.
func infoLines(benches []Benchmark) []string {
	var lines []string
	for _, b := range benches {
		if len(b.Informational) == 0 {
			continue
		}
		units := make([]string, 0, len(b.Informational))
		for u := range b.Informational {
			units = append(units, u)
		}
		sort.Strings(units)
		cols := make([]string, len(units))
		for i, u := range units {
			cols[i] = fmt.Sprintf("%s %.1f", u, b.Informational[u])
		}
		lines = append(lines, fmt.Sprintf("INFO     %s: %s (report-only)", b.Name, strings.Join(cols, ", ")))
	}
	return lines
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write parsed benchmarks as JSON to this file (default stdout)")
	baselinePath := fs.String("baseline", "", "baseline JSON; exit 1 if the gated metric regresses past -threshold")
	metric := fs.String("metric", "accesses/op", "metric the baseline gate compares")
	threshold := fs.Float64("threshold", 0.20, "allowed fractional regression for the gated metric")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if informationalUnit(*metric) {
		fmt.Fprintf(stderr, "benchjson: metric %q is informational (wall-clock) and cannot gate\n", *metric)
		return 2
	}

	var benches []Benchmark
	if fs.NArg() == 0 {
		var err error
		benches, err = parseBench(stdin)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: stdin: %v\n", err)
			return 2
		}
	}
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 2
		}
		bs, err := parseBench(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %s: %v\n", path, err)
			return 2
		}
		benches = append(benches, bs...)
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found in input")
		return 2
	}

	doc, err := json.MarshalIndent(Output{Benchmarks: benches}, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	doc = append(doc, '\n')
	if *out == "" {
		stdout.Write(doc)
	} else if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}

	if *baselinePath == "" {
		return 0
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	var baseline Output
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(stderr, "benchjson: %s: %v\n", *baselinePath, err)
		return 2
	}
	lines, regressed := compare(baseline.Benchmarks, benches, *metric, *threshold)
	for _, l := range lines {
		fmt.Fprintln(stdout, l)
	}
	if regressed {
		fmt.Fprintf(stderr, "benchjson: %s regression past +%.0f%% threshold\n", *metric, 100**threshold)
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
