package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// finding is one lint violation.
type finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders a finding in the conventional file:line:col form.
func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// ruleSet selects which rules run on a package; main derives it from the
// package's import path, tests enable everything.
type ruleSet struct {
	// MapRange flags ranging over a map: Go randomizes iteration order, so
	// any map range in script-generation code is a nondeterministic-output
	// bug unless the keys are collected and sorted first. Suppress a
	// deliberate order-free iteration with `//ivmlint:allow maprange` on
	// the same or the preceding line.
	MapRange bool
	// DeepEqual flags reflect.DeepEqual in executor hot paths: tuple and
	// value comparison must go through the typed internal/rel comparators.
	DeepEqual bool
	// BindName flags fmt.Sprintf calls that fabricate "base:…" / "cache:…"
	// binding names outside the blessed constructors, which would bypass
	// the single point of truth for the executor's naming scheme.
	BindName bool
	// GoStmt flags naked `go` statements in the executor packages outside
	// the blessed scheduler file (sched.go): all maintenance concurrency
	// must flow through the bounded worker pool so worker counts stay
	// bounded, counter shards stay attributed, and shutdown stays in one
	// place. Suppress a deliberate launch with `//ivmlint:allow gostmt`.
	GoStmt bool
	// TableType flags references to the concrete table type — rel.Table
	// and its constructors — outside internal/rel and internal/storage.
	// Everything above the storage boundary must reach tables through
	// storage.Engine / storage.Handle so backends stay swappable and every
	// access is cost-counted; constructing or type-asserting the concrete
	// type punches through that boundary. Suppress a deliberate escape
	// with `//ivmlint:allow tabletype`.
	TableType bool
}

// relPkgPath is the package owning the concrete table implementation; only
// it and the storage boundary package may name these identifiers.
const relPkgPath = "idivm/internal/rel"

// tableTypeForbidden are the rel identifiers that expose the concrete
// table: the type itself and both constructors.
var tableTypeForbidden = map[string]bool{
	"Table":        true,
	"NewTable":     true,
	"MustNewTable": true,
}

// goStmtExemptFiles are the blessed goroutine-launch files, one per linted
// package: the Δ-script scheduler owning internal/ivm's worker pool and
// the operator pool owning internal/algebra's. Everything else must route
// concurrency through them.
var goStmtExemptFiles = map[string]bool{
	"sched.go": true, // internal/ivm: step-DAG scheduler + view parallel-for
	"pool.go":  true, // internal/algebra: intra-operator kernel pool
}

// bindNameConstructors are the only functions allowed to build executor
// binding names from format strings.
var bindNameConstructors = map[string]bool{
	"BaseBindName": true,
	"freshCache":   true,
}

// lintPackage runs the enabled rules over a package and returns the
// findings in file/position order.
func lintPackage(p *pkgInfo, rules ruleSet) []finding {
	var out []finding
	for _, f := range p.Files {
		allowed := allowLines(p.Fset, f)
		if rules.MapRange {
			out = append(out, checkMapRange(p, f, allowed)...)
		}
		if rules.DeepEqual {
			out = append(out, checkDeepEqual(p, f)...)
		}
		if rules.BindName {
			out = append(out, checkBindName(p, f)...)
		}
		if rules.GoStmt {
			out = append(out, checkGoStmt(p, f, allowed)...)
		}
		if rules.TableType {
			out = append(out, checkTableType(p, f, allowed)...)
		}
	}
	return out
}

// allowLines collects, per rule name, the source lines carrying an
// `//ivmlint:allow <rule>` annotation. An annotation suppresses a finding
// on its own line or the line directly below it.
func allowLines(fset *token.FileSet, f *ast.File) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "ivmlint:allow ") {
				continue
			}
			rest := strings.TrimPrefix(text, "ivmlint:allow ")
			rule := rest
			if i := strings.IndexAny(rest, " \t—-"); i > 0 {
				rule = rest[:i]
			}
			if out[rule] == nil {
				out[rule] = map[int]bool{}
			}
			out[rule][fset.Position(c.Pos()).Line] = true
		}
	}
	return out
}

func suppressed(allowed map[string]map[int]bool, rule string, line int) bool {
	lines := allowed[rule]
	return lines != nil && (lines[line] || lines[line-1])
}

// checkMapRange flags `for … := range m` statements where m is map-typed.
func checkMapRange(p *pkgInfo, f *ast.File, allowed map[string]map[int]bool) []finding {
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		pos := p.Fset.Position(rs.Pos())
		if suppressed(allowed, "maprange", pos.Line) {
			return true
		}
		out = append(out, finding{Pos: pos, Rule: "maprange",
			Msg: "map iteration order is randomized; collect and sort the keys " +
				"(or annotate an order-free loop with //ivmlint:allow maprange)"})
		return true
	})
	return out
}

// checkDeepEqual flags calls and references to reflect.DeepEqual.
func checkDeepEqual(p *pkgInfo, f *ast.File) []finding {
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "DeepEqual" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "reflect" {
			return true
		}
		out = append(out, finding{Pos: p.Fset.Position(sel.Pos()), Rule: "deepequal",
			Msg: "reflect.DeepEqual in an executor hot path; use the typed comparators in internal/rel"})
		return true
	})
	return out
}

// checkBindName flags fmt.Sprintf calls whose format literal fabricates a
// "base:…" or "cache:…" binding name outside the blessed constructors.
func checkBindName(p *pkgInfo, f *ast.File) []finding {
	var out []finding
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if bindNameConstructors[fn.Name.Name] {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sprintf" {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "fmt" {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			val := strings.Trim(lit.Value, "`\"")
			if strings.HasPrefix(val, "base:") || strings.HasPrefix(val, "cache:") {
				out = append(out, finding{Pos: p.Fset.Position(call.Pos()), Rule: "bindname",
					Msg: fmt.Sprintf("binding name %q built outside the blessed constructors "+
						"(BaseBindName / freshCache)", val)})
			}
			return true
		})
	}
	return out
}

// checkGoStmt flags `go` statements outside the blessed pool files.
func checkGoStmt(p *pkgInfo, f *ast.File, allowed map[string]map[int]bool) []finding {
	if goStmtExemptFiles[filepath.Base(p.Fset.Position(f.Pos()).Filename)] {
		return nil
	}
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		pos := p.Fset.Position(gs.Pos())
		if suppressed(allowed, "gostmt", pos.Line) {
			return true
		}
		out = append(out, finding{Pos: pos, Rule: "gostmt",
			Msg: "goroutine launched outside the blessed pool files (sched.go, pool.go); " +
				"route concurrency through the worker pool " +
				"(or annotate with //ivmlint:allow gostmt)"})
		return true
	})
	return out
}

// checkTableType flags qualified references to the concrete table type or
// its constructors (rel.Table, rel.NewTable, rel.MustNewTable) — type
// assertions, composite literals, conversions and calls all surface as the
// same selector node, so one check covers every way of punching through
// the storage boundary.
func checkTableType(p *pkgInfo, f *ast.File, allowed map[string]map[int]bool) []finding {
	var out []finding
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !tableTypeForbidden[sel.Sel.Name] {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != relPkgPath {
			return true
		}
		pos := p.Fset.Position(sel.Pos())
		if suppressed(allowed, "tabletype", pos.Line) {
			return true
		}
		out = append(out, finding{Pos: pos, Rule: "tabletype",
			Msg: fmt.Sprintf("concrete table reference rel.%s outside the storage boundary; "+
				"go through storage.Engine / storage.Handle "+
				"(or annotate with //ivmlint:allow tabletype)", sel.Sel.Name)})
		return true
	})
	return out
}

// rulesFor derives the rule set applicable to an import path: determinism
// rules for the script-generation packages, hot-path rules for the
// executor and relation layers, concurrency discipline for the executor,
// naming discipline everywhere, and the storage-boundary rule everywhere
// except the two packages that legitimately own the concrete table type.
func rulesFor(mod, importPath string) ruleSet {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, mod), "/")
	return ruleSet{
		MapRange: rel == "internal/ivm" || rel == "internal/algebra" || rel == "internal/sqlview",
		DeepEqual: rel == "internal/ivm" || rel == "internal/rel" ||
			strings.HasPrefix(rel, "internal/ivm/") || strings.HasPrefix(rel, "internal/rel/"),
		BindName: true,
		GoStmt: rel == "internal/ivm" || strings.HasPrefix(rel, "internal/ivm/") ||
			rel == "internal/algebra" || strings.HasPrefix(rel, "internal/algebra/"),
		TableType: !(rel == "internal/rel" || strings.HasPrefix(rel, "internal/rel/") ||
			rel == "internal/storage" || strings.HasPrefix(rel, "internal/storage/")),
	}
}
