package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// pkgInfo is one type-checked package: the parsed files of its directory
// (test files excluded — generation determinism and hot-path rules are
// about production code) plus the type information the rules consult.
type pkgInfo struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Info       *types.Info
}

// moduleImporter resolves imports without go/packages or any external
// tooling: module-internal paths ("idivm/...") map onto the repository's
// directories and are type-checked recursively; everything else is the
// standard library, resolved from GOROOT source.
type moduleImporter struct {
	root  string // module root directory (holds go.mod)
	mod   string // module path from go.mod
	fset  *token.FileSet
	cache map[string]*types.Package
	std   types.ImporterFrom
}

func newModuleImporter(root, mod string, fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		root:  root,
		mod:   mod,
		fset:  fset,
		cache: map[string]*types.Package{},
		std:   importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import implements types.Importer.
func (im *moduleImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (im *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := im.cache[path]; ok {
		return p, nil
	}
	if path == im.mod || strings.HasPrefix(path, im.mod+"/") {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, im.mod), "/")
		pkg, _, err := im.checkDir(filepath.Join(im.root, sub), path, nil)
		if err != nil {
			return nil, err
		}
		im.cache[path] = pkg
		return pkg, nil
	}
	p, err := im.std.ImportFrom(path, dir, mode)
	if err != nil {
		return nil, err
	}
	im.cache[path] = p
	return p, nil
}

// checkDir parses and type-checks the non-test files of one directory,
// returning the checked package and the exact ASTs the checker saw. When
// info is non-nil it is populated for rule consumption.
func (im *moduleImporter) checkDir(dir, importPath string, info *types.Info) (*types.Package, []*ast.File, error) {
	files, err := parseDir(im.fset, dir)
	if err != nil {
		return nil, nil, err
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	conf := types.Config{Importer: im}
	pkg, err := conf.Check(importPath, im.fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return pkg, files, nil
}

// parseDir parses every non-test .go file of a directory, with comments
// (the suppression annotations live there).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// loadPackage type-checks the package in dir and returns it with full type
// info for linting.
func loadPackage(im *moduleImporter, dir, importPath string) (*pkgInfo, error) {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
		Defs:  map[*ast.Ident]types.Object{},
	}
	_, files, err := im.checkDir(dir, importPath, info)
	if err != nil {
		return nil, err
	}
	return &pkgInfo{Dir: dir, ImportPath: importPath, Fset: im.fset, Files: files, Info: info}, nil
}

// moduleRoot walks upward from start to the directory holding go.mod and
// returns it along with the module path declared there.
func moduleRoot(start string) (root, mod string, err error) {
	dir, err := filepath.Abs(start)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if strings.HasPrefix(line, "module ") {
					return dir, strings.TrimSpace(strings.TrimPrefix(line, "module ")), nil
				}
			}
			return "", "", fmt.Errorf("go.mod in %s has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", start)
		}
		dir = parent
	}
}
