// Package chargepath is the seeded fixture for the chargepath analyzer:
// deliberate violations (a charged-shape call on the raw backend
// interface, plus the three uncharged batch-converter escapes) and one
// blessed suppression (a Backend() escape).
package chargepath

import (
	"idivm/internal/rel"
	"idivm/internal/storage"
)

func rawScan(t storage.Table) []rel.Tuple {
	return t.Scan(rel.StatePost) // violation: charged access bypassing the Handle
}

func escape(h *storage.Handle) storage.Table {
	return h.Backend() //ivmlint:allow chargepath — fixture bless: registration path
}

// The batch converters are uncharged by design; outside internal/algebra
// and internal/rel they move tuples around the charge point.

func smuggleIn(rows []rel.Tuple) *rel.Batch {
	sch := rel.NewSchema([]string{"a"}, nil)
	return rel.FromTuples(sch, rows) // violation: uncharged batch conversion outside the kernels
}

func smuggleRel(r *rel.Relation) *rel.Batch {
	return rel.FromRelation(r) // violation: uncharged batch conversion outside the kernels
}

func smuggleOut(b *rel.Batch) *rel.Relation {
	return b.Materialize(0) // violation: uncharged materialization outside the kernels
}
