// Package chargepath is the seeded fixture for the chargepath analyzer:
// deliberate violations (a charged-shape call on the raw backend
// interface, the three uncharged batch-converter escapes, and a
// key-frequency stats read outside the planner) and two blessed
// suppressions (a Backend() escape and a stats read).
package chargepath

import (
	"idivm/internal/rel"
	"idivm/internal/storage"
)

func rawScan(t storage.Table) []rel.Tuple {
	return t.Scan(rel.StatePost) // violation: charged access bypassing the Handle
}

func escape(h *storage.Handle) storage.Table {
	return h.Backend() //ivmlint:allow chargepath — fixture bless: registration path
}

// The batch converters are uncharged by design; outside internal/algebra
// and internal/rel they move tuples around the charge point.

func smuggleIn(rows []rel.Tuple) *rel.Batch {
	sch := rel.NewSchema([]string{"a"}, nil)
	return rel.FromTuples(sch, rows) // violation: uncharged batch conversion outside the kernels
}

func smuggleRel(r *rel.Relation) *rel.Batch {
	return rel.FromRelation(r) // violation: uncharged batch conversion outside the kernels
}

func smuggleOut(b *rel.Batch) *rel.Relation {
	return b.Materialize(0) // violation: uncharged materialization outside the kernels
}

// The key-frequency statistics are uncharged like IndexCard — sound while
// they steer plan choice inside the planner, a free data channel anywhere
// else.

func statsPeek(h *storage.Handle) (int, error) {
	return h.KeyFreq(rel.StatePost, []string{"a"}, nil) // violation: uncharged stats read outside the planner
}

func statsBless(h *storage.Handle) ([]rel.KeyCount, error) {
	return h.HeavyKeys(rel.StatePost, []string{"a"}, 2) //ivmlint:allow chargepath — fixture bless: ops introspection
}
