// Package chargepath is the seeded fixture for the chargepath analyzer:
// one deliberate violation (a charged-shape call on the raw backend
// interface) and one blessed suppression (a Backend() escape).
package chargepath

import (
	"idivm/internal/rel"
	"idivm/internal/storage"
)

func rawScan(t storage.Table) []rel.Tuple {
	return t.Scan(rel.StatePost) // violation: charged access bypassing the Handle
}

func escape(h *storage.Handle) storage.Table {
	return h.Backend() //ivmlint:allow chargepath — fixture bless: registration path
}
