// Package stale is the seeded fixture for stale-suppression detection:
// a dead annotation (right analyzer, nothing to suppress) and a typo'd
// one (unknown analyzer). Both must surface as findings of the
// "suppression" pseudo-analyzer.
package stale

func noop() int {
	x := 1 //ivmlint:allow maprange — dead: there is no map range here
	//ivmlint:allow nosuchrule — unknown analyzer name
	return x
}
