// Package sharedcapture is the seeded fixture for the sharedcapture
// analyzer: one deliberate violation (a worker closure folding into a
// captured accumulator), one blessed suppression, and the worker-indexed
// discipline staying quiet. parallelFor is a local stub with the pool
// helper's shape — the analyzer keys on the callee name.
package sharedcapture

func parallelFor(workers, n int, fn func(w, i int)) {
	for w := 0; w < workers; w++ {
		for i := w; i < n; i += workers {
			fn(w, i)
		}
	}
}

func fold(xs []int) int {
	total := 0
	parallelFor(2, len(xs), func(w, i int) {
		total += xs[i] // violation: captured-accumulator write
	})

	shards := make([]int, 2)
	parallelFor(2, len(xs), func(w, i int) {
		shards[w] += xs[i] // worker-indexed: no finding
	})

	sum := 0
	parallelFor(1, len(xs), func(w, i int) {
		sum += xs[i] //ivmlint:allow sharedcapture — fixture bless: single worker
	})
	return total + shards[0] + shards[1] + sum
}
