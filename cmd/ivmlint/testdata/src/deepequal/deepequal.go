// Package deepequal is the seeded fixture for the deepequal analyzer: one
// deliberate violation and one blessed suppression.
package deepequal

import "reflect"

func eq(a, b []int) bool {
	return reflect.DeepEqual(a, b) // violation: reflective comparison in a hot path
}

func eqBlessed(a, b []int) bool {
	return reflect.DeepEqual(a, b) //ivmlint:allow deepequal — fixture bless
}
