// Package maprange is the seeded fixture for the maprange analyzer: one
// deliberate violation and one blessed suppression.
package maprange

func sum(m map[string]int) (int, int) {
	total := 0
	for _, v := range m { // violation: randomized iteration order
		total += v
	}
	seen := 0
	for range m { //ivmlint:allow maprange — order-free count
		seen++
	}
	return total, seen
}
