// Package countershard is the seeded fixture for the countershard
// analyzer: one deliberate violation, one blessed suppression, and the
// blessed fold helper staying quiet.
package countershard

import "idivm/internal/rel"

func adHoc(c *rel.CostCounter) {
	c.TupleReads++ // violation: ad-hoc field arithmetic
}

func fold(c *rel.CostCounter, shard rel.CostCounter) {
	c.Add(shard) // blessed helper: no finding

	c.TupleWrites += 1 //ivmlint:allow countershard — fixture bless
}
