// Package bindname is the seeded fixture for the bindname analyzer: one
// deliberate violation, one blessed suppression, and the constructor
// exemption.
package bindname

import "fmt"

func fabricated(i int) string {
	return fmt.Sprintf("base:%d", i) // violation: binding name outside the constructors
}

func blessed(i int) string {
	return fmt.Sprintf("cache:%d", i) //ivmlint:allow bindname — fixture bless
}

// BaseBindName is a blessed constructor by name: no finding inside it.
func BaseBindName(i int) string {
	return fmt.Sprintf("base:%d", i)
}
