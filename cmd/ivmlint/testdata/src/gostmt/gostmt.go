// Package gostmt is the seeded fixture for the gostmt analyzer: one
// deliberate violation and one blessed suppression; pool.go exercises the
// exempt-file rule.
package gostmt

func launch(ch chan int) {
	go func() { ch <- 1 }() // violation: naked goroutine outside the pool files

	//ivmlint:allow gostmt — fixture bless
	go func() { ch <- 2 }()
}
