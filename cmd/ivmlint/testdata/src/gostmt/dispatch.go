package gostmt

// dispatch.go is the serving layer's blessed goroutine-launch file:
// like sched.go and pool.go, goroutine launches here are exempt from the
// gostmt rule and must produce no finding.
func dispatchLaunch(ch chan int) {
	go func() { ch <- 4 }()
}
