package gostmt

// pool.go is one of the blessed pool files: goroutine launches here are
// exempt from the gostmt rule and must produce no finding.
func poolLaunch(ch chan int) {
	go func() { ch <- 3 }()
}
