// Package floatfold is the seeded fixture for the floatfold analyzer: one
// deliberate violation (a float fold in map-iteration order) and one
// blessed suppression; the integer fold stays quiet.
package floatfold

func sums(m map[string]float64, n map[string]int) (float64, int, float64) {
	var total float64
	for _, v := range m {
		total += v // violation: non-associative fold in randomized order
	}

	ints := 0
	for _, v := range n {
		ints += v // integers are associative: no finding
	}

	var count float64
	for range m {
		count += 1 //ivmlint:allow floatfold — fixture bless: constant increments commute
	}
	return total, ints, count
}
