// Package tabletype is the seeded fixture for the tabletype analyzer: one
// deliberate violation and one blessed suppression.
package tabletype

import "idivm/internal/rel"

// leaked names the concrete table type above the storage boundary.
var leaked *rel.Table // violation: concrete type reference

//ivmlint:allow tabletype — fixture bless: helper constructs its own table
var blessed = rel.MustNewTable("t", rel.NewSchema([]string{"k"}, []string{"k"}))
