package fixture

// Goroutines in a file named pool.go are exempt from the gostmt rule:
// this is the fixture's stand-in for the algebra operator pool's blessed
// file. Nothing here may be flagged.
func BlessedPoolGoroutine(ch chan int) {
	go func() { ch <- 7 }()
}
