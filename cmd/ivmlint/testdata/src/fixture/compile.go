package fixture

// A goroutine launched from a kernel file like compile.go must be routed
// through the pool instead. Expected finding: gostmt.
func KernelGoroutine(ch chan int) {
	go func() { ch <- 9 }()
}
