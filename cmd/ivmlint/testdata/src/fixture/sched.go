package fixture

// Goroutines in a file named sched.go are exempt from the gostmt rule:
// this is the fixture's stand-in for the executor's blessed scheduler
// file. Nothing here may be flagged.
func BlessedGoroutine(ch chan int) {
	go func() { ch <- 3 }()
}
