// Package fixture is the linter's seeded regression corpus: each function
// below commits one violation the rules must flag (or one suppressed case
// they must not). It lives under testdata so the real lint runs skip it.
package fixture

import (
	"fmt"
	"reflect"
	"sort"

	"idivm/internal/rel"
)

// UnsortedRange iterates a map directly — the canonical nondeterminism bug
// the maprange rule exists for. Expected finding: maprange.
func UnsortedRange(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedRange collects keys under an annotation, then sorts: the blessed
// idiom. The annotated line must NOT be flagged.
func SortedRange(m map[string]int) []string {
	var keys []string
	for k := range m { //ivmlint:allow maprange
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PrecedingLineSuppression exercises the annotation-on-previous-line form.
func PrecedingLineSuppression(m map[string]int) int {
	n := 0
	//ivmlint:allow maprange
	for range m {
		n++
	}
	return n
}

// SlowCompare uses reflect.DeepEqual where a typed comparator belongs.
// Expected finding: deepequal.
func SlowCompare(a, b []int) bool {
	return reflect.DeepEqual(a, b)
}

// RogueBindName fabricates an executor binding name by hand instead of
// going through BaseBindName. Expected finding: bindname.
func RogueBindName(table string, i int) string {
	return fmt.Sprintf("base:%s:%d", table, i)
}

// RogueCacheName fabricates a cache name. Expected finding: bindname.
func RogueCacheName(view string, i int) string {
	return fmt.Sprintf("cache:%s:%d", view, i)
}

// BaseBindName is blessed by name: the rule must stay quiet here even
// though the body formats a "base:" name.
func BaseBindName(table string, i int) string {
	return fmt.Sprintf("base:%s:%d", table, i)
}

// InnocentSprintf formats a non-binding string; must not be flagged.
func InnocentSprintf(x int) string {
	return fmt.Sprintf("Δ%d", x)
}

// NakedGoroutine launches a goroutine outside the blessed scheduler file.
// Expected finding: gostmt.
func NakedGoroutine(ch chan int) {
	go func() { ch <- 1 }()
}

// SuppressedGoroutine exercises the annotation escape hatch.
func SuppressedGoroutine(ch chan int) {
	//ivmlint:allow gostmt
	go func() { ch <- 2 }()
}

// DirectTableConstruction builds the concrete table instead of asking a
// storage.Engine for one. Expected finding: tabletype.
func DirectTableConstruction() any {
	return rel.MustNewTable("rogue", rel.NewSchema([]string{"k"}, []string{"k"}))
}

// ConcreteTableAssertion peeks behind the storage boundary by asserting
// down to the concrete type. Expected finding: tabletype.
func ConcreteTableAssertion(v any) bool {
	_, ok := v.(*rel.Table)
	return ok
}

// SuppressedTableEscape exercises the tabletype annotation escape hatch;
// the schema constructor alone is always legal.
func SuppressedTableEscape() any {
	//ivmlint:allow tabletype
	return rel.MustNewTable("blessed", rel.NewSchema([]string{"k"}, []string{"k"}))
}
