// Command ivmlint is the repository's invariant linter: a thin CLI over
// the pass-based analyzer framework in internal/lint. The framework
// type-checks the requested packages (production and _test.go files, the
// latter under a reduced rule set) on the standard library's go/ast +
// go/types only, runs every registered analyzer in its scope, and reports
// stale `//ivmlint:allow` annotations alongside ordinary findings. See
// DESIGN.md §11 for the analyzer catalog and the invariant each one pins.
//
// Usage:
//
//	go run ./cmd/ivmlint ./...               # whole module, text findings
//	go run ./cmd/ivmlint -json ./...         # JSON findings on stdout
//	go run ./cmd/ivmlint -o lint.json ./...  # text findings + JSON artifact
//
// Exit status: 0 clean, 1 findings, 2 load/typecheck failure. Suppress a
// deliberate violation with `//ivmlint:allow <analyzer>` on the same or
// the preceding line; unused annotations are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"

	"idivm/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout instead of text")
	artifact := flag.String("o", "", "also write findings as JSON to this file (CI artifact)")
	flag.Usage = usage
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := lint.Run(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivmlint:", err)
		os.Exit(2)
	}
	for _, lerr := range res.LoadErrors {
		fmt.Fprintln(os.Stderr, "ivmlint:", lerr)
	}
	if *artifact != "" || *jsonOut {
		data, err := res.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ivmlint:", err)
			os.Exit(2)
		}
		if *artifact != "" {
			if err := os.WriteFile(*artifact, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "ivmlint:", err)
				os.Exit(2)
			}
		}
		if *jsonOut {
			os.Stdout.Write(data)
		}
	}
	if !*jsonOut {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
	}
	switch {
	case len(res.LoadErrors) > 0:
		os.Exit(2)
	case len(res.Findings) > 0:
		fmt.Fprintf(os.Stderr, "ivmlint: %d finding(s)\n", len(res.Findings))
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: ivmlint [-json] [-o file] [packages]\n\nAnalyzers:\n")
	for _, an := range lint.Analyzers() {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", an.Name, an.Doc)
	}
	fmt.Fprintf(os.Stderr, "  %-14s stale //ivmlint:allow annotations (always on)\n", lint.StaleAnalyzerName)
	flag.PrintDefaults()
}
