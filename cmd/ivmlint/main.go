// Command ivmlint is the repository's determinism and hot-path linter,
// built purely on the standard library's go/ast and go/types (the module
// stays dependency-free). It walks the requested packages and flags:
//
//   - maprange — map-range loops in the script-generation packages
//     (internal/ivm, internal/algebra, internal/sqlview): Go randomizes map
//     iteration order, so an unsorted range there makes generated Δ-scripts
//     differ between runs;
//   - deepequal — reflect.DeepEqual in executor hot paths (internal/ivm,
//     internal/rel), where the typed comparators of internal/rel must be
//     used instead;
//   - bindname — fmt.Sprintf calls fabricating "base:…"/"cache:…" binding
//     names outside the blessed constructors (BaseBindName, freshCache);
//   - gostmt — naked `go` statements in internal/ivm and internal/algebra
//     outside the blessed pool files (sched.go, pool.go): maintenance and
//     operator concurrency must flow through the bounded worker pools;
//   - tabletype — references to the concrete table type (rel.Table,
//     rel.NewTable, rel.MustNewTable) outside internal/rel and
//     internal/storage: everything above the storage boundary must reach
//     tables through storage.Engine / storage.Handle.
//
// Usage:
//
//	go run ./cmd/ivmlint ./...           # whole module
//	go run ./cmd/ivmlint ./internal/...  # one subtree
//
// Exit status: 0 clean, 1 findings, 2 load/typecheck failure. Deliberate
// order-free map iterations are suppressed with a `//ivmlint:allow
// maprange` comment on the same or the preceding line.
package main

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, mod, err := moduleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivmlint:", err)
		os.Exit(2)
	}
	dirs, err := expandPatterns(root, args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ivmlint:", err)
		os.Exit(2)
	}

	fset := token.NewFileSet()
	im := newModuleImporter(root, mod, fset)
	var findings []finding
	failed := false
	for _, dir := range dirs {
		relDir, err := filepath.Rel(root, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ivmlint:", err)
			os.Exit(2)
		}
		importPath := mod
		if relDir != "." {
			importPath = mod + "/" + filepath.ToSlash(relDir)
		}
		pkg, err := loadPackage(im, dir, importPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ivmlint: %s: %v\n", importPath, err)
			failed = true
			continue
		}
		findings = append(findings, lintPackage(pkg, rulesFor(mod, importPath))...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	for _, f := range findings {
		fmt.Println(f)
	}
	switch {
	case failed:
		os.Exit(2)
	case len(findings) > 0:
		fmt.Fprintf(os.Stderr, "ivmlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// expandPatterns resolves ./...-style package patterns into the module's
// package directories: directories containing at least one non-test .go
// file, skipping testdata, hidden, and underscore-prefixed directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) error {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return err
		}
		if !seen[abs] {
			seen[abs] = true
			out = append(out, abs)
		}
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		dir := pat
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			dir = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if dir == "" || dir == "." {
				dir = root
			}
		}
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		if !recursive {
			if !hasGoFiles(dir) {
				// A typo'd path silently passing would defeat the gate.
				return nil, fmt.Errorf("no buildable Go files in %s", dir)
			}
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				return add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// hasGoFiles reports whether the directory holds at least one buildable
// non-test Go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
