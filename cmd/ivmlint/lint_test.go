package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idivm/internal/lint"
)

// fixtureCases maps each registered analyzer to its seeded fixture
// package under testdata/src. Every fixture contains exactly one
// deliberate violation (the line marked `// violation`) and one blessed
// `//ivmlint:allow` suppression, so each case proves three things at
// once: the analyzer fires (the test fails if the analyzer is missing or
// disabled), it fires only where seeded, and the blessed annotation is
// counted as used rather than stale.
var fixtureCases = []struct {
	analyzer string
	wantMsg  string
}{
	{"maprange", "map iteration order"},
	{"deepequal", "reflect.DeepEqual"},
	{"bindname", "base:"},
	{"gostmt", "goroutine launched outside"},
	{"tabletype", "rel.Table"},
	{"chargepath", "cost"},
	{"countershard", "CostCounter.TupleReads"},
	{"sharedcapture", "captured variable"},
	{"floatfold", "map-iteration order"},
}

func fixtureLoader(t *testing.T) *lint.Loader {
	t.Helper()
	l, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// violationLines returns the 1-based lines of every `// violation` marker
// in the fixture package — the exact positions the analyzer must flag.
func violationLines(t *testing.T, dir string) map[string][]int {
	t.Helper()
	want := map[string][]int{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.Contains(line, "// violation") {
				want[e.Name()] = append(want[e.Name()], i+1)
			}
		}
	}
	return want
}

func TestAnalyzerFixtures(t *testing.T) {
	l := fixtureLoader(t)
	for _, tc := range fixtureCases {
		t.Run(tc.analyzer, func(t *testing.T) {
			an := lint.ByName(tc.analyzer)
			if an == nil {
				t.Fatalf("analyzer %q is not registered", tc.analyzer)
			}
			dir := filepath.Join("testdata", "src", tc.analyzer)
			pkg, err := l.Load(dir)
			if err != nil {
				t.Fatalf("Load(%s): %v", dir, err)
			}
			findings := lint.LintPackage(pkg, []*lint.Analyzer{an})
			if len(findings) == 0 {
				t.Fatal("fixture produced no findings — analyzer disabled?")
			}

			// Every `// violation` marker must have a finding and nothing
			// else may be flagged.
			want := violationLines(t, dir)
			got := map[string][]int{}
			for _, f := range findings {
				if f.Analyzer != tc.analyzer {
					t.Errorf("finding from wrong analyzer: %s", f)
				}
				if !strings.Contains(f.Msg, tc.wantMsg) {
					t.Errorf("finding message %q does not mention %q", f.Msg, tc.wantMsg)
				}
				name := filepath.Base(f.Pos.Filename)
				got[name] = append(got[name], f.Pos.Line)
			}
			for name, lines := range want {
				if !equalInts(got[name], lines) {
					t.Errorf("%s: flagged lines %v, want %v", name, got[name], lines)
				}
			}
			for name := range got {
				if _, ok := want[name]; !ok {
					t.Errorf("unexpected findings in %s: %v", name, got[name])
				}
			}

			// The fixture's blessed suppression must be counted as used.
			if stale := lint.StaleFindings(pkg, []*lint.Analyzer{an}); len(stale) != 0 {
				t.Errorf("unexpected stale suppressions: %v", stale)
			}
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStaleSuppressions exercises the three stale cases on the seeded
// stale fixture: a dead annotation for an analyzer that ran, an unknown
// analyzer name, and an annotation for an analyzer that did not run.
func TestStaleSuppressions(t *testing.T) {
	l := fixtureLoader(t)
	dir := filepath.Join("testdata", "src", "stale")

	pkg, err := l.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	ran := []*lint.Analyzer{lint.ByName("maprange")}
	if findings := lint.LintPackage(pkg, ran); len(findings) != 0 {
		t.Fatalf("stale fixture has live findings: %v", findings)
	}
	stale := lint.StaleFindings(pkg, ran)
	if len(stale) != 2 {
		t.Fatalf("stale findings = %v, want 2", stale)
	}
	var msgs []string
	for _, f := range stale {
		if f.Analyzer != lint.StaleAnalyzerName {
			t.Errorf("stale finding reported under %q, want %q", f.Analyzer, lint.StaleAnalyzerName)
		}
		msgs = append(msgs, f.Msg)
	}
	joined := strings.Join(msgs, "\n")
	if !strings.Contains(joined, "unknown analyzer") {
		t.Errorf("missing unknown-analyzer case in %q", joined)
	}
	if !strings.Contains(joined, "suppresses no finding") {
		t.Errorf("missing dead-annotation case in %q", joined)
	}

	// A fresh load with the analyzer out of the ran set hits the third
	// case: the annotation names an analyzer that never ran here.
	pkg2, err := l.Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	found := false
	for _, f := range lint.StaleFindings(pkg2, nil) {
		if strings.Contains(f.Msg, "does not run on this package's files") {
			found = true
		}
	}
	if !found {
		t.Error("missing not-run case")
	}
}

// TestRepositoryIsClean is the repo-wide self-lint gate: the module must
// produce zero findings — and zero stale suppressions — under the full
// analyzer suite, exactly like `go run ./cmd/ivmlint ./...` exiting zero.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module; skipped in -short")
	}
	res, err := lint.Run(".", []string{"./..."})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, lerr := range res.LoadErrors {
		t.Errorf("load error: %v", lerr)
	}
	for _, f := range res.Findings {
		t.Errorf("finding: %s", f)
	}
}
