package main

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixture type-checks the seeded regression package with all rules on.
func loadFixture(t *testing.T) []finding {
	t.Helper()
	root, mod, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	im := newModuleImporter(root, mod, fset)
	dir := filepath.Join("testdata", "src", "fixture")
	pkg, err := loadPackage(im, dir, "fixture")
	if err != nil {
		t.Fatal(err)
	}
	return lintPackage(pkg, ruleSet{MapRange: true, DeepEqual: true, BindName: true, GoStmt: true, TableType: true})
}

// ruleCount tallies findings per rule.
func ruleCount(fs []finding) map[string]int {
	out := map[string]int{}
	for _, f := range fs {
		out[f.Rule]++
	}
	return out
}

func TestFixtureSeededRegressionsFlagged(t *testing.T) {
	fs := loadFixture(t)
	counts := ruleCount(fs)
	if counts["maprange"] != 1 {
		t.Errorf("maprange findings = %d, want exactly the unsorted range: %v", counts["maprange"], fs)
	}
	if counts["deepequal"] != 1 {
		t.Errorf("deepequal findings = %d, want 1: %v", counts["deepequal"], fs)
	}
	if counts["bindname"] != 2 {
		t.Errorf("bindname findings = %d, want the two rogue constructors: %v", counts["bindname"], fs)
	}
	if counts["gostmt"] != 2 {
		t.Errorf("gostmt findings = %d, want the two naked goroutines (fixture.go and compile.go): %v", counts["gostmt"], fs)
	}
	if counts["tabletype"] != 2 {
		t.Errorf("tabletype findings = %d, want the construction and the assertion: %v", counts["tabletype"], fs)
	}
	// Every finding must carry a real position, and none may come from the
	// fixture's sched.go or pool.go — goroutines there are the blessed-file
	// exemption. The kernel-file goroutine surfaces from compile.go.
	for _, f := range fs {
		okFile := strings.HasSuffix(f.Pos.Filename, "fixture.go") ||
			(f.Rule == "gostmt" && strings.HasSuffix(f.Pos.Filename, "compile.go"))
		if !okFile || f.Pos.Line <= 0 {
			t.Errorf("finding without a real position (or from an exempt pool file): %v", f)
		}
	}
	foundKernel := false
	for _, f := range fs {
		if f.Rule == "gostmt" && strings.HasSuffix(f.Pos.Filename, "compile.go") {
			foundKernel = true
		}
	}
	if !foundKernel {
		t.Error("goroutine launched from the fixture's compile.go was not flagged")
	}
}

// The two suppression forms (same line, preceding line) and the blessed
// constructor must all stay quiet; the flagged map range must be the one in
// UnsortedRange.
func TestFixtureSuppressionsRespected(t *testing.T) {
	fs := loadFixture(t)
	for _, f := range fs {
		if f.Rule != "maprange" {
			continue
		}
		// The sole maprange finding must sit inside UnsortedRange, which
		// spans the head of the file — well before the suppressed loops.
		if f.Pos.Line > 22 {
			t.Errorf("maprange flagged a suppressed loop at line %d: %v", f.Pos.Line, f)
		}
	}
	for _, f := range fs {
		if f.Rule == "bindname" && strings.Contains(f.Msg, "Δ") {
			t.Errorf("bindname flagged an innocent Sprintf: %v", f)
		}
	}
}

func TestFindingRendering(t *testing.T) {
	f := finding{Pos: token.Position{Filename: "x.go", Line: 3, Column: 7},
		Rule: "maprange", Msg: "m"}
	if got := f.String(); got != "x.go:3:7: maprange: m" {
		t.Errorf("finding rendering = %q", got)
	}
}

// The real tree must be clean: this is the same gate CI runs via
// `go run ./cmd/ivmlint ./...`, executed in-process for a fast signal.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	root, mod, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := expandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	im := newModuleImporter(root, mod, fset)
	for _, dir := range dirs {
		relDir, err := filepath.Rel(root, dir)
		if err != nil {
			t.Fatal(err)
		}
		importPath := mod
		if relDir != "." {
			importPath = mod + "/" + filepath.ToSlash(relDir)
		}
		pkg, err := loadPackage(im, dir, importPath)
		if err != nil {
			t.Fatalf("%s: %v", importPath, err)
		}
		for _, f := range lintPackage(pkg, rulesFor(mod, importPath)) {
			t.Errorf("%v", f)
		}
	}
}

// rulesFor routes the determinism rule to the generation packages only and
// the hot-path rule to the executor and relation layers.
func TestRulesFor(t *testing.T) {
	cases := []struct {
		path string
		want ruleSet
	}{
		{"idivm/internal/ivm", ruleSet{MapRange: true, DeepEqual: true, BindName: true, GoStmt: true, TableType: true}},
		{"idivm/internal/algebra", ruleSet{MapRange: true, BindName: true, GoStmt: true, TableType: true}},
		{"idivm/internal/sqlview", ruleSet{MapRange: true, BindName: true, TableType: true}},
		{"idivm/internal/rel", ruleSet{DeepEqual: true, BindName: true}},
		{"idivm/internal/storage", ruleSet{BindName: true}},
		{"idivm/internal/db", ruleSet{BindName: true, TableType: true}},
		{"idivm/cmd/ivmlint", ruleSet{BindName: true, TableType: true}},
	}
	for _, c := range cases {
		if got := rulesFor("idivm", c.path); got != c.want {
			t.Errorf("rulesFor(%s) = %+v, want %+v", c.path, got, c.want)
		}
	}
}
