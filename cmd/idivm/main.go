// Command idivm demonstrates the idIVM engine on the paper's running
// example (Figures 1, 2, 5 and 7): it creates the devices/parts schema,
// registers the SPJ and aggregate views, prints their generated Δ-scripts,
// applies the paper's modifications and maintains the views incrementally,
// reporting the access-count cost of each maintenance round.
package main

import (
	"flag"
	"fmt"
	"os"

	"idivm"
)

func main() {
	mode := flag.String("mode", "id", "diff propagation mode: id | tuple")
	showScript := flag.Bool("script", true, "print the generated Δ-scripts")
	flag.Parse()

	var m idivm.Mode
	switch *mode {
	case "id":
		m = idivm.ModeID
	case "tuple":
		m = idivm.ModeTuple
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	if err := run(m, *showScript); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run(mode idivm.Mode, showScript bool) error {
	d := idivm.Open()
	d.MustCreateTable("parts", idivm.Columns("pid", "price"), "pid")
	d.MustCreateTable("devices", idivm.Columns("did", "category"), "did")
	d.MustCreateTable("devices_parts", idivm.Columns("did", "pid"), "did", "pid")

	// Figure 2's initial instance.
	d.MustInsert("parts", "P1", 10)
	d.MustInsert("parts", "P2", 20)
	d.MustInsert("devices", "D1", "phone")
	d.MustInsert("devices", "D2", "phone")
	d.MustInsert("devices", "D3", "tablet")
	d.MustInsert("devices_parts", "D1", "P1")
	d.MustInsert("devices_parts", "D2", "P1")
	d.MustInsert("devices_parts", "D1", "P2")

	// Figure 1b's view V and Figure 5b's view V'.
	if err := d.CreateView(`
		CREATE VIEW v AS
		SELECT did, pid, price
		FROM parts NATURAL JOIN devices_parts NATURAL JOIN devices
		WHERE category = 'phone'`, idivm.WithMode(mode)); err != nil {
		return err
	}
	if err := d.CreateView(`
		CREATE VIEW v_cost AS
		SELECT devices_parts.did, SUM(price) AS cost
		FROM parts, devices_parts, devices
		WHERE parts.pid = devices_parts.pid
		  AND devices_parts.did = devices.did
		  AND category = 'phone'
		GROUP BY devices_parts.did`, idivm.WithMode(mode)); err != nil {
		return err
	}

	printView := func(name string) error {
		rows, err := d.View(name)
		if err != nil {
			return err
		}
		fmt.Printf("%s %v:\n", name, rows.Columns)
		for _, r := range rows.Data {
			fmt.Println(" ", r)
		}
		return nil
	}

	fmt.Printf("== initial views (%s mode) ==\n", mode)
	if err := printView("v"); err != nil {
		return err
	}
	if err := printView("v_cost"); err != nil {
		return err
	}

	if showScript {
		for _, name := range []string{"v", "v_cost"} {
			s, err := d.Script(name)
			if err != nil {
				return err
			}
			fmt.Printf("\n== generated script for %s ==\n%s", name, s)
		}
	}

	// The paper's Figure 2 change plus some churn.
	fmt.Println("\n== applying modifications ==")
	fmt.Println("  UPDATE parts SET price = 11 WHERE pid = 'P1'")
	if _, err := d.Update("parts", []any{"P1"}, map[string]any{"price": 11}); err != nil {
		return err
	}
	fmt.Println("  UPDATE devices SET category = 'phone' WHERE did = 'D3'")
	if _, err := d.Update("devices", []any{"D3"}, map[string]any{"category": "phone"}); err != nil {
		return err
	}
	fmt.Println("  INSERT INTO devices_parts VALUES ('D3','P2')")
	if err := d.Insert("devices_parts", "D3", "P2"); err != nil {
		return err
	}

	stats, err := d.Maintain()
	if err != nil {
		return err
	}
	fmt.Println("\n== maintenance ==")
	for _, s := range stats {
		fmt.Printf("  %-7s diff-tuples=%d accesses=%d rows-touched=%d in %v\n",
			s.View, s.DiffTuples, s.Accesses, s.RowsTouched, s.Duration)
	}

	fmt.Println("\n== views after maintenance ==")
	if err := printView("v"); err != nil {
		return err
	}
	if err := printView("v_cost"); err != nil {
		return err
	}
	for _, name := range []string{"v", "v_cost"} {
		if err := d.CheckConsistent(name); err != nil {
			return err
		}
	}
	fmt.Println("\nconsistency check: both views equal full recomputation ✓")
	return nil
}
