// Command experiments regenerates the paper's evaluation artifacts:
//
//	experiments -fig 10            # Figure 10 (BSMA speedups)
//	experiments -fig 12a           # Figure 12a (varying diff size)
//	experiments -fig 12b           # Figure 12b (varying joins)
//	experiments -fig 12c           # Figure 12c (varying selectivity)
//	experiments -fig 12d           # Figure 12d (varying fanout)
//	experiments -table 2           # eq. (1) validation (Table 2 model)
//	experiments -table 3           # eq. (2) validation (Table 3 model)
//	experiments -all               # everything
//
// -scale and -users control dataset sizes (defaults keep a full run in
// tens of seconds; raise them on beefier machines to approach the paper's
// ratios more closely).
package main

import (
	"flag"
	"fmt"
	"os"

	"idivm/internal/bsma"
	"idivm/internal/harness"
	"idivm/internal/workload"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 10 | 12a | 12b | 12c | 12d | crossover")
	table := flag.String("table", "", "table/model to validate: 2 | 3")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Int("scale", 4000, "parts/devices count for the Figure 12 sweeps")
	users := flag.Int("users", 400, "user count for the Figure 10 workload")
	csv := flag.Bool("csv", false, "emit CSV instead of text tables")
	flag.Parse()

	if !*all && *fig == "" && *table == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*fig, *table, *all, *scale, *users, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// crossoverDs picks diff sizes spanning well past the expected crossover.
func crossoverDs(scale int) []int {
	return []int{scale / 40, scale / 10, scale / 4, scale / 2, scale}
}

func run(fig, table string, all bool, scale, users int, csv bool) error {
	base := workload.Defaults(scale)
	base.Devices = scale

	if all || fig == "10" {
		fmt.Println("== Figure 10: speedup of ID-based over tuple-based IVM, BSMA views ==")
		p := bsma.Defaults(users)
		rows, err := harness.RunFig10(p)
		if err != nil {
			return err
		}
		if csv {
			harness.WriteFig10CSV(os.Stdout, rows)
		} else {
			harness.FprintFig10(os.Stdout, rows)
		}
		fmt.Println()
	}

	sweeps := []struct {
		id   string
		vary harness.Fig12Vary
		sdbt bool
	}{
		{"12a", harness.VaryDiffSize, true},
		{"12b", harness.VaryJoins, false},
		{"12c", harness.VarySelectivity, true},
		{"12d", harness.VaryFanout, true},
	}
	for _, s := range sweeps {
		if !all && fig != s.id {
			continue
		}
		fmt.Printf("== Figure %s: varying %s (A=idIVM, B=tuple, C=SDBT-fixed, D=SDBT-streams) ==\n",
			s.id, s.vary)
		points, err := harness.RunFig12(s.vary, harness.PaperValues(s.vary), base, s.sdbt)
		if err != nil {
			return err
		}
		if csv {
			harness.WriteFig12CSV(os.Stdout, s.vary, points)
		} else {
			harness.FprintFig12(os.Stdout, s.vary, points)
		}
		fmt.Println()
	}

	if all || table == "2" {
		fmt.Println("== Table 2 / equation (1): SPJ cost model validation ==")
		v, err := harness.RunCostModelValidation(base, false)
		if err != nil {
			return err
		}
		harness.FprintValidation(os.Stdout, v)
		fmt.Println()
	}
	if all || fig == "crossover" {
		fmt.Println("== Footnote 9: IVM vs full recomputation crossover ==")
		rows, err := harness.RunCrossover(base, crossoverDs(scale))
		if err != nil {
			return err
		}
		harness.FprintCrossover(os.Stdout, rows)
		fmt.Println()
	}

	if all || table == "3" {
		fmt.Println("== Table 3 / equation (2): aggregate cost model validation ==")
		v, err := harness.RunCostModelValidation(base, true)
		if err != nil {
			return err
		}
		harness.FprintValidation(os.Stdout, v)
		fmt.Println()
	}
	return nil
}
