GO ?= go

.PHONY: check build vet test race lint

# check is the full local gate, identical to CI: build, vet, race-enabled
# tests, and the repository linter. Any lint finding fails the build.
check: build vet race lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/ivmlint ./...
