GO ?= go

.PHONY: check build vet test race race-sharded race-serving lint lint-json bench-smoke bench-smoke-sharded bench-smoke-serving bench-smoke-skew

# check is the full local gate, identical to CI: build, vet, race-enabled
# tests on both storage engines, and the repository linter. Any lint
# finding fails the build.
check: build vet race race-sharded lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-sharded re-runs the internal suites on the hash-partitioned storage
# engine. bench-smoke deliberately stays on the default engine so
# accesses/op stay comparable to testdata/bench_baseline.json.
race-sharded:
	IDIVM_ENGINE=sharded $(GO) test -race ./internal/...

# race-serving is the serving-layer tear-check at both GOMAXPROCS shapes
# CI uses; the suite matrixes both storage engines internally.
race-serving:
	$(GO) test -race -cpu 1,4 -run 'Serving|Snapshot|Dispatcher' ./internal/serve/ .

lint:
	$(GO) run ./cmd/ivmlint ./...

# lint-json keeps the text findings on stdout and additionally writes
# lint.json (the stable CI-artifact schema: file/line/col/analyzer/message
# per finding, [] when clean). Exit status matches `make lint`.
lint-json:
	$(GO) run ./cmd/ivmlint -o lint.json ./...

# bench-smoke mirrors CI's benchmark regression gate: a one-iteration run
# of the Figure 12a (d=200) and SPJ headline benchmarks plus the columnar
# kernel microbenchmarks, converted to BENCH.json (ns/op, allocs/op and
# accesses/op per row) and compared against testdata/bench_baseline.json
# on the deterministic accesses/op metric (>20% worse fails; ns/op and
# allocs/op appear as informational columns — gate on allocations with
# BENCHJSON_FLAGS='... -metric allocs/op'). The SPJBatchedMaintenance row
# runs under IDIVM_BATCH_SIZE=1024: its accesses/op must match the
# SPJNonConditionalUpdate/id row — batching is invisible to the cost model.
# Regenerate the baseline after a deliberate cost change with:
#   make bench-smoke BENCHJSON_FLAGS='-o testdata/bench_baseline.json'
BENCHJSON_FLAGS ?= -o BENCH.json -baseline testdata/bench_baseline.json
bench-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkFig12a_DiffSize$$/^d=200$$' -benchtime=1x . | tee bench.txt
	$(GO) test -run '^$$' -bench '^BenchmarkSPJNonConditionalUpdate$$' -benchtime=1x . | tee -a bench.txt
	IDIVM_BATCH_SIZE=1024 $(GO) test -run '^$$' -bench '^BenchmarkSPJBatchedMaintenance$$' -benchtime=1x . | tee -a bench.txt
	$(GO) test -run '^$$' -bench '^BenchmarkScanHeavyRecompute$$' -benchtime=1x . | tee -a bench.txt
	$(GO) test -run '^$$' -bench '^BenchmarkBatch(Filter|HashJoin)$$' -benchtime=1x . | tee -a bench.txt
	$(GO) test -run '^$$' -bench '^BenchmarkCascadeMaintenance$$' -benchtime=1x . | tee -a bench.txt
	$(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS) bench.txt

# bench-smoke-sharded re-runs the same subset on the hash-partitioned
# engine with 4 intra-operator workers. Report-only: accesses/op are
# invariant under OpWorkers by construction (the race-sharded differential
# matrix proves it), but physical scan order shifts some apply-phase costs
# between engines, so this artifact is never gated against the mem-engine
# baseline. The interesting column is ns/op on the ScanHeavyRecompute
# seq-vs-op4 rows — which only separates on multi-core hosts.
bench-smoke-sharded:
	IDIVM_ENGINE=sharded:8 IDIVM_OP_WORKERS=4 $(GO) test -run '^$$' -bench '^BenchmarkFig12a_DiffSize$$/^d=200$$' -benchtime=1x . | tee bench_sharded.txt
	IDIVM_ENGINE=sharded:8 IDIVM_OP_WORKERS=4 $(GO) test -run '^$$' -bench '^BenchmarkSPJNonConditionalUpdate$$' -benchtime=1x . | tee -a bench_sharded.txt
	IDIVM_ENGINE=sharded:8 IDIVM_OP_WORKERS=4 $(GO) test -run '^$$' -bench '^BenchmarkScanHeavyRecompute$$' -benchtime=1x . | tee -a bench_sharded.txt
	$(GO) run ./cmd/benchjson -o BENCH_sharded.json bench_sharded.txt

# bench-smoke-serving mirrors CI's bench-serving lane: BenchmarkServing's
# replay lane reports accesses/op — the deterministic apply+maintenance
# cost of one 100-write group-commit batch — and gates against the same
# baseline; the concurrent lane's p50-ns/p99-ns/rounds-per-sec are
# wall-clock and land in BENCH_7.json as informational columns only
# (benchjson refuses to gate on them).
BENCHJSON_SERVING_FLAGS ?= -o BENCH_7.json -baseline testdata/bench_baseline.json
bench-smoke-serving:
	$(GO) test -run '^$$' -bench '^BenchmarkServing$$' -benchtime=2000x . | tee bench_serving.txt
	$(GO) run ./cmd/benchjson $(BENCHJSON_SERVING_FLAGS) bench_serving.txt

# bench-smoke-skew is the skew-adaptation lane: BenchmarkSkewSweep runs the
# feed join under uniform and zipf(1.1) author distributions with
# heavy/light partitioning off and on (threshold 16 unless
# IDIVM_SKEW_THRESHOLD overrides it), converted to BENCH_skew.json and
# gated against the shared baseline on accesses/op. The uniform rows pin
# the no-heavy-keys safety property (on ≡ off), the zipf1.1 rows pin the
# heavy-lane win (~31% fewer accesses at threshold 16). ns/op stays
# informational: CI runs on small shared runners where wall-clock is
# noise, so only the deterministic access counts gate.
BENCHJSON_SKEW_FLAGS ?= -o BENCH_skew.json -baseline testdata/bench_baseline.json
bench-smoke-skew:
	$(GO) test -run '^$$' -bench '^BenchmarkSkewSweep$$' -benchtime=1x . | tee bench_skew.txt
	$(GO) run ./cmd/benchjson $(BENCHJSON_SKEW_FLAGS) bench_skew.txt
