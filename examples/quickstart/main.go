// Quickstart: define tables, materialize a view, modify data, and let
// idIVM bring the view up to date incrementally.
package main

import (
	"fmt"
	"log"

	"idivm"
)

func main() {
	d := idivm.Open()

	// Base tables need primary keys — idIVM's ID-based diffs exploit them.
	d.MustCreateTable("products", idivm.Columns("sku", "name", "price"), "sku")
	d.MustCreateTable("orders", idivm.Columns("oid", "sku", "qty"), "oid")

	d.MustInsert("products", "A-1", "anvil", 95)
	d.MustInsert("products", "B-2", "binoculars", 60)
	d.MustInsert("orders", 1, "A-1", 2)
	d.MustInsert("orders", 2, "A-1", 1)
	d.MustInsert("orders", 3, "B-2", 4)

	// A materialized join view: order lines with current prices.
	d.MustCreateView(`
		CREATE VIEW order_lines AS
		SELECT oid, sku, name, price, qty, price * qty AS total
		FROM orders NATURAL JOIN products`)

	show := func(header string) {
		rows, err := d.View("order_lines")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(header)
		for _, r := range rows.Data {
			fmt.Printf("  order %v: %v ×%v @ %v = %v\n", r[0], r[2], r[4], r[3], r[5])
		}
	}
	show("initial view:")

	// A price change: one base-table update.
	if _, err := d.Update("products", []any{"A-1"}, map[string]any{"price": 99}); err != nil {
		log.Fatal(err)
	}

	// Maintain incrementally. The single-tuple i-diff identifies every
	// affected view row through the product's key — no join re-evaluation.
	stats, err := d.Maintain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaintenance: %d diff tuple(s), %d accesses, %d view rows touched\n\n",
		stats[0].DiffTuples, stats[0].Accesses, stats[0].RowsTouched)

	show("after maintenance:")

	if err := d.CheckConsistent("order_lines"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nview matches full recomputation ✓")
}
