// Social analytics: the paper's motivating scenario (Section 7.1) —
// continuously maintained aggregate dashboards over a fast-changing
// social-media database. A stream of profile updates, posts and follows
// arrives; the dashboards are brought up to date by idIVM after each
// batch, and the per-batch maintenance cost is reported.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"idivm"
)

const (
	nUsers  = 400
	nTopics = 12
	batches = 5
	perOps  = 150
)

func main() {
	d := idivm.Open()
	rng := rand.New(rand.NewSource(2015))

	d.MustCreateTable("users", idivm.Columns("uid", "city", "followers"), "uid")
	d.MustCreateTable("posts", idivm.Columns("pid", "uid", "topic", "likes"), "pid")
	d.MustCreateTable("follows", idivm.Columns("follower", "followee"), "follower", "followee")

	cities := []string{"melbourne", "sydney", "perth", "adelaide"}
	for u := 0; u < nUsers; u++ {
		d.MustInsert("users", u, cities[rng.Intn(len(cities))], rng.Intn(1000))
	}
	nextPost := 0
	for ; nextPost < nUsers*4; nextPost++ {
		d.MustInsert("posts", nextPost, rng.Intn(nUsers),
			fmt.Sprintf("topic%02d", rng.Intn(nTopics)), rng.Intn(50))
	}
	for i := 0; i < nUsers*3; i++ {
		a, b := rng.Intn(nUsers), rng.Intn(nUsers)
		if a != b {
			_ = d.Insert("follows", a, b) // duplicates rejected silently
		}
	}

	// Dashboard 1: engagement per topic (aggregate over a join — the
	// Q*3 shape of the paper's workload).
	d.MustCreateView(`
		CREATE VIEW topic_board AS
		SELECT topic, SUM(likes) AS total_likes, SUM(followers) AS reach, COUNT(*) AS posts
		FROM posts, users
		WHERE posts.uid = users.uid
		GROUP BY topic`)

	// Dashboard 2: per-city influencer reach (longer chain, selective
	// tail — the Q*1 shape).
	d.MustCreateView(`
		CREATE VIEW city_reach AS
		SELECT city, SUM(likes) AS likes
		FROM users, posts
		WHERE users.uid = posts.uid AND city = 'melbourne'
		GROUP BY city`)

	for batch := 1; batch <= batches; batch++ {
		// The stream: follower-count updates dominate (the paper's update
		// workload), plus fresh posts and likes.
		for i := 0; i < perOps; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				if _, err := d.Update("users", []any{rng.Intn(nUsers)},
					map[string]any{"followers": rng.Intn(2000)}); err != nil {
					log.Fatal(err)
				}
			case 2:
				d.MustInsert("posts", nextPost, rng.Intn(nUsers),
					fmt.Sprintf("topic%02d", rng.Intn(nTopics)), rng.Intn(50))
				nextPost++
			case 3:
				if _, err := d.Update("posts", []any{rng.Intn(nextPost)},
					map[string]any{"likes": rng.Intn(500)}); err != nil {
					log.Fatal(err)
				}
			}
		}
		stats, err := d.Maintain()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d:\n", batch)
		for _, s := range stats {
			fmt.Printf("  %-12s diffs=%-4d accesses=%-6d rows=%-4d %v\n",
				s.View, s.DiffTuples, s.Accesses, s.RowsTouched, s.Duration.Round(1000))
		}
		for _, v := range []string{"topic_board", "city_reach"} {
			if err := d.CheckConsistent(v); err != nil {
				log.Fatal(err)
			}
		}
	}

	rows, err := d.View("topic_board")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal topic board (topic, likes, reach, posts):")
	for _, r := range rows.Data {
		fmt.Printf("  %v  likes=%-6v reach=%-8v posts=%v\n", r[0], r[1], r[2], r[3])
	}
	fmt.Println("\nall dashboards consistent with full recomputation ✓")
}
