// Devices catalog: the paper's running example at catalog scale, run
// side-by-side in ID-based and tuple-based mode to show the access-count
// gap of Example 1.2 — the tuple-based D-script joins devices_parts and
// devices per price change, the ID-based Δ-script touches neither.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"idivm"
)

const (
	nParts   = 3000
	nDevices = 3000
	fanout   = 8
	nUpdates = 150
)

func build(mode idivm.Mode, seed int64) *idivm.DB {
	d := idivm.Open()
	rng := rand.New(rand.NewSource(seed))

	d.MustCreateTable("parts", idivm.Columns("pid", "price"), "pid")
	d.MustCreateTable("devices", idivm.Columns("did", "category"), "did")
	d.MustCreateTable("devices_parts", idivm.Columns("did", "pid"), "did", "pid")

	for p := 0; p < nParts; p++ {
		d.MustInsert("parts", p, 1+rng.Intn(100))
	}
	for dev := 0; dev < nDevices; dev++ {
		cat := "tablet"
		if dev%5 == 0 {
			cat = "phone" // 20% selectivity, as in Figure 11
		}
		d.MustInsert("devices", dev, cat)
		for k := 0; k < fanout; k++ {
			_ = d.Insert("devices_parts", dev, rng.Intn(nParts))
		}
	}

	// Figure 5b's aggregate view: total part cost per phone.
	d.MustCreateView(`
		CREATE VIEW phone_cost AS
		SELECT devices_parts.did, SUM(price) AS cost
		FROM parts, devices_parts, devices
		WHERE parts.pid = devices_parts.pid
		  AND devices_parts.did = devices.did
		  AND category = 'phone'
		GROUP BY devices_parts.did`, idivm.WithMode(mode))
	return d
}

func run(mode idivm.Mode, name string) (accesses int64, ms float64) {
	d := build(mode, 42)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < nUpdates; i++ {
		if _, err := d.Update("parts", []any{rng.Intn(nParts)},
			map[string]any{"price": 1 + rng.Intn(100)}); err != nil {
			log.Fatal(err)
		}
	}
	stats, err := d.Maintain()
	if err != nil {
		log.Fatal(err)
	}
	if err := d.CheckConsistent("phone_cost"); err != nil {
		log.Fatal(err)
	}
	s := stats[0]
	fmt.Printf("%-12s diff-tuples=%-4d accesses=%-8d rows-touched=%-5d %v\n",
		name, s.DiffTuples, s.Accesses, s.RowsTouched, s.Duration.Round(1000))
	return s.Accesses, float64(s.Duration.Microseconds()) / 1000
}

func main() {
	fmt.Printf("catalog: %d parts, %d devices, fanout %d; %d price updates\n\n",
		nParts, nDevices, fanout, nUpdates)

	idAcc, _ := run(idivm.ModeID, "id-based")
	tuAcc, _ := run(idivm.ModeTuple, "tuple-based")

	fmt.Printf("\nspeedup (accesses): %.1fx — the i-diffs identify every affected\n",
		float64(tuAcc)/float64(idAcc))
	fmt.Println("view row through the part's key instead of re-joining the catalog.")
}
