// Deferred maintenance: idIVM's deferred IVM semantics (Section 3) made
// visible. Base tables change immediately; materialized views stay at
// their last-maintained state until Maintain() runs; the modification log
// is compacted into *effective* diffs first — a tuple updated five times
// and then deleted costs one delete, and an insert followed by a delete
// costs nothing at all.
package main

import (
	"fmt"
	"log"

	"idivm"
)

func main() {
	d := idivm.Open()
	d.MustCreateTable("sensors", idivm.Columns("sid", "zone", "reading"), "sid")
	for i := 0; i < 8; i++ {
		zone := "north"
		if i >= 4 {
			zone = "south"
		}
		d.MustInsert("sensors", i, zone, 20+i)
	}

	d.MustCreateView(`
		CREATE VIEW zone_stats AS
		SELECT zone, SUM(reading) AS total, COUNT(*) AS sensors, AVG(reading) AS mean
		FROM sensors
		GROUP BY zone`)

	show := func(header string) {
		rows, err := d.View("zone_stats")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(header)
		for _, r := range rows.Data {
			fmt.Printf("  %-6v total=%-4v n=%v mean=%.2f\n", r[0], r[1], r[2], r[3])
		}
	}

	show("maintained view:")

	// A burst of changes. The view is now stale — deliberately.
	fmt.Println("\napplying a burst of modifications (view stays stale)...")
	for i := 0; i < 5; i++ {
		if _, err := d.Update("sensors", []any{0}, map[string]any{"reading": 100 + i}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := d.Delete("sensors", 0); err != nil { // ...then it dies anyway
		log.Fatal(err)
	}
	d.MustInsert("sensors", 99, "north", 50)           // a new sensor...
	if _, err := d.Delete("sensors", 99); err != nil { // ...decommissioned immediately
		log.Fatal(err)
	}
	if _, err := d.Update("sensors", []any{5}, map[string]any{"reading": 77}); err != nil {
		log.Fatal(err)
	}

	show("\nview BEFORE maintenance (stale, as deferred IVM prescribes):")

	// Nine modifications net out to: delete sensor 0, update sensor 5.
	stats, err := d.Maintain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmaintenance consumed %d effective diff tuple(s) from 9 logged modifications\n",
		stats[0].DiffTuples)
	fmt.Printf("(%d accesses, %d view/cache rows touched)\n", stats[0].Accesses, stats[0].RowsTouched)

	show("\nview AFTER maintenance:")
	if err := d.CheckConsistent("zone_stats"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconsistent with full recomputation ✓")
}
