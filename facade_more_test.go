package idivm_test

import (
	"testing"

	"idivm"
)

// Deferred semantics through the public API: the view is stale until
// Maintain runs.
func TestFacadeDeferredStaleness(t *testing.T) {
	d := openRunningExample(t)
	d.MustCreateView(`CREATE VIEW v AS
		SELECT did, pid, price
		FROM parts NATURAL JOIN devices_parts NATURAL JOIN devices
		WHERE category = 'phone'`)

	if _, err := d.Update("parts", []any{"P1"}, map[string]any{"price": 11}); err != nil {
		t.Fatal(err)
	}
	rows, _ := d.View("v")
	for _, r := range rows.Data {
		if r[1] == "P1" && r[2] == int64(11) {
			t.Fatal("view must stay stale before Maintain")
		}
	}
	if _, err := d.Maintain(); err != nil {
		t.Fatal(err)
	}
	rows, _ = d.View("v")
	seen := false
	for _, r := range rows.Data {
		if r[1] == "P1" && r[2] == int64(11) {
			seen = true
		}
	}
	if !seen {
		t.Fatal("view must reflect the update after Maintain")
	}
}

// Several views over one database maintained by a single call, with one
// consuming JOIN … ON syntax and an alias self-join.
func TestFacadeMultiViewAndJoinOn(t *testing.T) {
	d := openRunningExample(t)
	d.MustCreateView(`CREATE VIEW lines AS
		SELECT dp.did, p.pid, p.price
		FROM parts p JOIN devices_parts dp ON p.pid = dp.pid`)
	d.MustCreateView(`CREATE VIEW price_pairs AS
		SELECT a.pid, b.pid AS other
		FROM parts a, parts b
		WHERE a.price = b.price AND a.pid <> b.pid`)

	if _, err := d.Update("parts", []any{"P2"}, map[string]any{"price": 10}); err != nil {
		t.Fatal(err)
	}
	stats, err := d.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats = %d views", len(stats))
	}
	for _, v := range []string{"lines", "price_pairs"} {
		if err := d.CheckConsistent(v); err != nil {
			t.Fatal(err)
		}
	}
	pairs, _ := d.View("price_pairs")
	if pairs.Len() != 2 {
		t.Fatalf("equal-price pairs = %d, want 2", pairs.Len())
	}
}

func TestFacadeHavingView(t *testing.T) {
	d := openRunningExample(t)
	d.MustCreateView(`CREATE VIEW pricey AS
		SELECT did, SUM(price) AS cost
		FROM parts NATURAL JOIN devices_parts
		GROUP BY did
		HAVING cost >= 30`)
	rows, _ := d.View("pricey")
	if rows.Len() != 1 {
		t.Fatalf("initial pricey = %d, want 1 (D1 at 30)", rows.Len())
	}
	if _, err := d.Update("parts", []any{"P1"}, map[string]any{"price": 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Maintain(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistent("pricey"); err != nil {
		t.Fatal(err)
	}
	rows, _ = d.View("pricey")
	if rows.Len() != 2 { // D1 at 50, D2 at 30
		t.Fatalf("pricey after raise = %d, want 2", rows.Len())
	}
}

func TestFacadeUnwrapAndRows(t *testing.T) {
	d := openRunningExample(t)
	dbx, sys := d.Unwrap()
	if dbx == nil || sys == nil {
		t.Fatal("Unwrap returned nils")
	}
	rows, err := d.Query(`SELECT pid, price FROM parts`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 || len(rows.Columns) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// Value conversion round-trip covers nil/bool/float.
	d.MustCreateTable("misc", idivm.Columns("k", "f", "b", "n"), "k")
	d.MustInsert("misc", 1, 2.5, true, nil)
	got, err := d.Query(`SELECT k, f, b, n FROM misc`)
	if err != nil {
		t.Fatal(err)
	}
	r := got.Data[0]
	if r[0] != int64(1) || r[1] != 2.5 || r[2] != true || r[3] != nil {
		t.Fatalf("round-trip = %v", r)
	}
}

func TestFacadeDuplicateView(t *testing.T) {
	d := openRunningExample(t)
	d.MustCreateView(`CREATE VIEW v AS SELECT pid, price FROM parts`)
	if err := d.CreateView(`CREATE VIEW v AS SELECT pid, price FROM parts`); err == nil {
		t.Fatal("duplicate view must error")
	}
	if err := d.CreateView(`CREATE VIEW broken AS SELECT nosuch FROM parts`); err == nil {
		t.Fatal("bad column must error")
	}
}
