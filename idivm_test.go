package idivm_test

import (
	"strings"
	"testing"

	"idivm"
)

func openRunningExample(t testing.TB) *idivm.DB {
	t.Helper()
	d := idivm.Open()
	d.MustCreateTable("parts", idivm.Columns("pid", "price"), "pid")
	d.MustCreateTable("devices", idivm.Columns("did", "category"), "did")
	d.MustCreateTable("devices_parts", idivm.Columns("did", "pid"), "did", "pid")

	d.MustInsert("parts", "P1", 10)
	d.MustInsert("parts", "P2", 20)
	d.MustInsert("devices", "D1", "phone")
	d.MustInsert("devices", "D2", "phone")
	d.MustInsert("devices", "D3", "tablet")
	d.MustInsert("devices_parts", "D1", "P1")
	d.MustInsert("devices_parts", "D2", "P1")
	d.MustInsert("devices_parts", "D1", "P2")
	return d
}

func TestFacadeEndToEnd(t *testing.T) {
	d := openRunningExample(t)
	d.MustCreateView(`
		CREATE VIEW v AS
		SELECT did, pid, price
		FROM parts NATURAL JOIN devices_parts NATURAL JOIN devices
		WHERE category = 'phone'`)

	rows, err := d.View("v")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 3 {
		t.Fatalf("initial view rows = %d, want 3", rows.Len())
	}

	// The paper's running change: P1 price 10 → 11.
	if ok, err := d.Update("parts", []any{"P1"}, map[string]any{"price": 11}); err != nil || !ok {
		t.Fatalf("update: ok=%v err=%v", ok, err)
	}
	stats, err := d.Maintain()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].DiffTuples != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if err := d.CheckConsistent("v"); err != nil {
		t.Fatal(err)
	}
	rows, _ = d.View("v")
	updated := 0
	for _, r := range rows.Data {
		if r[1] == "P1" && r[2] == int64(11) {
			updated++
		}
	}
	if updated != 2 {
		t.Fatalf("expected both P1 rows updated, got %d\n%v", updated, rows.Data)
	}
}

func TestFacadeAggregateViewAndScript(t *testing.T) {
	d := openRunningExample(t)
	d.MustCreateView(`
		CREATE VIEW cost AS
		SELECT devices_parts.did, SUM(price) AS total
		FROM parts, devices_parts, devices
		WHERE parts.pid = devices_parts.pid
		  AND devices_parts.did = devices.did
		  AND category = 'phone'
		GROUP BY devices_parts.did`)

	script, err := d.Script("cost")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "CACHE") {
		t.Fatalf("aggregate view script should declare a cache:\n%s", script)
	}

	d.MustInsert("parts", "P3", 5)
	d.MustInsert("devices_parts", "D2", "P3")
	if _, err := d.Delete("devices_parts", "D1", "P2"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Maintain(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistent("cost"); err != nil {
		t.Fatal(err)
	}
	rows, _ := d.View("cost")
	got := map[any]any{}
	for _, r := range rows.Data {
		got[r[0]] = r[1]
	}
	if got["D1"] != int64(10) || got["D2"] != int64(15) {
		t.Fatalf("costs = %v", got)
	}
}

func TestFacadeTupleMode(t *testing.T) {
	d := openRunningExample(t)
	d.MustCreateView(`SELECT did, pid, price
		FROM parts NATURAL JOIN devices_parts NATURAL JOIN devices
		WHERE category = 'phone'`,
		idivm.WithName("v"), idivm.WithMode(idivm.ModeTuple))
	if _, err := d.Update("parts", []any{"P2"}, map[string]any{"price": 21}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Maintain(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckConsistent("v"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeQuery(t *testing.T) {
	d := openRunningExample(t)
	rows, err := d.Query(`SELECT pid FROM parts WHERE price > 15`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Data[0][0] != "P2" {
		t.Fatalf("query result = %v", rows.Data)
	}
}

func TestFacadeErrors(t *testing.T) {
	d := openRunningExample(t)
	if err := d.CreateView(`SELECT pid FROM parts`); err == nil {
		t.Fatal("unnamed view must error")
	}
	if err := d.CreateTable("t", idivm.Columns("a")); err == nil {
		t.Fatal("keyless table must error")
	}
	if err := d.Insert("parts", struct{}{}); err == nil {
		t.Fatal("unsupported value type must error")
	}
	if _, err := d.Update("parts", []any{"P1"}, map[string]any{"nope": 1}); err == nil {
		t.Fatal("unknown set column must error")
	}
	if _, err := d.View("missing"); err == nil {
		t.Fatal("missing view must error")
	}
	if _, err := d.Script("missing"); err == nil {
		t.Fatal("missing script must error")
	}
}

func TestFacadeAccessCounter(t *testing.T) {
	d := openRunningExample(t)
	d.ResetAccessCounter()
	if _, err := d.Query(`SELECT pid FROM parts`); err != nil {
		t.Fatal(err)
	}
	reads, _, _ := d.AccessCounter()
	if reads == 0 {
		t.Fatal("query should charge reads")
	}
}

func TestFacadeNullHandling(t *testing.T) {
	d := idivm.Open()
	d.MustCreateTable("t", idivm.Columns("k", "v"), "k")
	d.MustInsert("t", 1, nil)
	d.MustInsert("t", 2, 5)
	rows, err := d.Query(`SELECT k FROM t WHERE v IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Data[0][0] != int64(1) {
		t.Fatalf("IS NULL result = %v", rows.Data)
	}
}
